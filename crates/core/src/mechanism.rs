//! Mechanism selection and secure auto-configuration.
//!
//! [`MechanismKind::build`] assembles the device-side hook, controller-side
//! hook, RFM policy and timing mode for any evaluated mechanism, deriving
//! wave-attack-secure thresholds from `chronus-security` exactly as the
//! paper's §5 (PRFM/PRAC sweeps) and §8 (Chronus bound) prescribe. When no
//! secure configuration exists (e.g. PRAC below `N_RH` = 20, PARA below
//! `N_RH` ≈ 27), the most aggressive configuration is used and
//! [`MechanismSetup::secure`] is `false` — the red-edged bars of Fig. 4.

use chronus_ctrl::{AddressMapping, CtrlMitigation, NoCtrlMitigation, RfmPolicy};
use chronus_dram::{DramMitigation, Geometry, NoMitigation, TimingMode, Timings};
use chronus_security::wave::WaveTiming;
use chronus_security::{chronus_secure_nbo, prac_secure_nbo, prfm_secure_threshold};
use serde::{Deserialize, Serialize};

use crate::abacus::Abacus;
use crate::chronus::ChronusMechanism;
use crate::graphene::Graphene;
use crate::hydra::{Hydra, HydraConfig};
use crate::para::Para;
use crate::prac::PracMechanism;
use crate::prfm::PrfmSampler;

/// Every mechanism the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MechanismKind {
    /// No mitigation (the normalisation baseline).
    None,
    /// Periodic RFM (early DDR5).
    Prfm,
    /// PRAC with one RFM per back-off.
    Prac1,
    /// PRAC with two RFMs per back-off.
    Prac2,
    /// PRAC with four RFMs per back-off (the paper's main PRAC variant).
    Prac4,
    /// PRAC-4 combined with PRFM (`RFMth` = 75, §3).
    PracPrfm,
    /// Chronus: CCU + Chronus Back-Off (§7).
    Chronus,
    /// Chronus-PB: CCU with PRAC-4's back-off policy (§9).
    ChronusPb,
    /// Graphene [MICRO'20].
    Graphene,
    /// Hydra [ISCA'22].
    Hydra,
    /// PARA [ISCA'14].
    Para,
    /// ABACuS [USENIX Sec'24] (Appendix C).
    Abacus,
}

impl MechanismKind {
    /// All simulatable mechanisms (excluding the baseline).
    pub fn all() -> &'static [MechanismKind] {
        use MechanismKind::*;
        &[
            Prfm, Prac1, Prac2, Prac4, PracPrfm, Chronus, ChronusPb, Graphene, Hydra, Para, Abacus,
        ]
    }

    /// The seven mechanisms of the paper's headline comparison (Fig. 7–10).
    pub fn headline() -> &'static [MechanismKind] {
        use MechanismKind::*;
        &[Chronus, ChronusPb, Prac4, Graphene, Hydra, Prfm, Para]
    }

    /// Display label used across figures.
    pub fn label(&self) -> &'static str {
        match self {
            MechanismKind::None => "Baseline",
            MechanismKind::Prfm => "PRFM",
            MechanismKind::Prac1 => "PRAC-1",
            MechanismKind::Prac2 => "PRAC-2",
            MechanismKind::Prac4 => "PRAC-4",
            MechanismKind::PracPrfm => "PRAC+PRFM",
            MechanismKind::Chronus => "Chronus",
            MechanismKind::ChronusPb => "Chronus-PB",
            MechanismKind::Graphene => "Graphene",
            MechanismKind::Hydra => "Hydra",
            MechanismKind::Para => "PARA",
            MechanismKind::Abacus => "ABACuS",
        }
    }

    /// The DRAM timing mode this mechanism requires: PRAC variants pay the
    /// Table 1 penalty; Chronus's CCU and all controller-side mechanisms
    /// keep baseline timings.
    pub fn timing_mode(&self) -> TimingMode {
        match self {
            MechanismKind::Prac1
            | MechanismKind::Prac2
            | MechanismKind::Prac4
            | MechanismKind::PracPrfm => TimingMode::Prac,
            _ => TimingMode::Baseline,
        }
    }

    /// The address mapping the mechanism is evaluated with (ABACuS uses its
    /// own mapping, Appendix C; everything else uses the paper's MOP).
    pub fn preferred_mapping(&self) -> AddressMapping {
        match self {
            MechanismKind::Abacus => AddressMapping::AbacusMop,
            _ => AddressMapping::Mop,
        }
    }

    /// Whether the built mechanism consumes the RNG seed (only PARA draws
    /// from it). The batch engine folds seed-insensitive variants into one
    /// simulation, so this must stay exact: report `true` for any new
    /// mechanism that reads `seed` in `build_with_threshold`.
    pub fn uses_seed(&self) -> bool {
        matches!(self, MechanismKind::Para)
    }
}

impl std::fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully configured mechanism ready to plug into the simulator.
pub struct MechanismSetup {
    /// Which mechanism this is.
    pub kind: MechanismKind,
    /// The RowHammer threshold it is configured for.
    pub nrh: u32,
    /// DRAM timing mode (Table 1 column).
    pub timing_mode: TimingMode,
    /// On-die hook for the device.
    pub dram_mitigation: Box<dyn DramMitigation + Send>,
    /// Controller-side hook.
    pub ctrl_mitigation: Box<dyn CtrlMitigation>,
    /// Controller back-off policy.
    pub rfm_policy: RfmPolicy,
    /// PRFM RAA threshold, if the controller counts activations.
    pub raa_threshold: Option<u32>,
    /// Whether this configuration provably keeps every row below `nrh`
    /// under the wave attack.
    pub secure: bool,
    /// The derived mechanism threshold (N_BO, RFMth, T, or p×1000),
    /// for reporting.
    pub threshold: u32,
}

impl std::fmt::Debug for MechanismSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MechanismSetup")
            .field("kind", &self.kind)
            .field("nrh", &self.nrh)
            .field("timing_mode", &self.timing_mode)
            .field("rfm_policy", &self.rfm_policy)
            .field("raa_threshold", &self.raa_threshold)
            .field("secure", &self.secure)
            .field("threshold", &self.threshold)
            .finish()
    }
}

impl MechanismKind {
    /// Builds the mechanism for threshold `nrh` on `geo`, deriving secure
    /// configuration parameters from the analytical models. `seed` feeds
    /// PARA's RNG.
    pub fn build(self, nrh: u32, geo: Geometry, seed: u64) -> MechanismSetup {
        self.build_with_threshold(nrh, geo, seed, None)
    }

    /// Like [`MechanismKind::build`], but forces the mechanism threshold
    /// (PRAC/Chronus `N_BO`, PRFM `RFMth`) instead of deriving it — used
    /// for ablations and for replaying the paper's exact published
    /// configurations (e.g. PRAC-4 with `N_BO` = 1 at `N_RH` = 20).
    ///
    /// The forced configuration is marked secure only if the analytical
    /// worst case stays below `nrh`.
    pub fn build_with_threshold(
        self,
        nrh: u32,
        geo: Geometry,
        seed: u64,
        threshold_override: Option<u32>,
    ) -> MechanismSetup {
        let mode = self.timing_mode();
        let t = Timings::for_mode(mode);
        let baseline_t = Timings::for_mode(TimingMode::Baseline);
        let a_normal = baseline_t.a_normal() as u32;
        let att_entries = (a_normal + 1) as usize;
        // Per-bank activation budget within one refresh window.
        let acts_per_epoch = baseline_t.refw / baseline_t.rc;
        let epoch_cycles = baseline_t.refw;
        let wave_prac = WaveTiming::prac_default();
        let wave_base = WaveTiming::baseline_default();

        let mut setup = MechanismSetup {
            kind: self,
            nrh,
            timing_mode: mode,
            dram_mitigation: Box::new(NoMitigation),
            ctrl_mitigation: Box::new(NoCtrlMitigation),
            rfm_policy: RfmPolicy::None,
            raa_threshold: None,
            secure: true,
            threshold: 0,
        };
        let _ = t;
        match self {
            MechanismKind::None => {
                setup.secure = false; // no protection at all
            }
            MechanismKind::Prfm => {
                let (th, secure) = match threshold_override {
                    Some(th) => (
                        th,
                        chronus_security::prfm_worst_case(th, &wave_base).max_acts < nrh as u64,
                    ),
                    None => match prfm_secure_threshold(nrh, &wave_base) {
                        Some(th) => (th, true),
                        None => (1, false),
                    },
                };
                setup.raa_threshold = Some(th);
                setup.dram_mitigation = Box::new(PrfmSampler::new(geo, att_entries * 2));
                setup.secure = secure;
                setup.threshold = th;
            }
            MechanismKind::Prac1 | MechanismKind::Prac2 | MechanismKind::Prac4 => {
                let n = match self {
                    MechanismKind::Prac1 => 1,
                    MechanismKind::Prac2 => 2,
                    _ => 4,
                };
                let (nbo, secure) = match threshold_override {
                    Some(nbo) => (
                        nbo,
                        chronus_security::prac_worst_case(nbo, n, n, &wave_prac).max_acts
                            < nrh as u64,
                    ),
                    None => match prac_secure_nbo(nrh, n, n, &wave_prac) {
                        Some(nbo) => (nbo, true),
                        None => (1, false),
                    },
                };
                setup.dram_mitigation = Box::new(PracMechanism::new(geo, nbo, att_entries));
                setup.rfm_policy = RfmPolicy::PracBackOff {
                    n_ref: n,
                    n_delay: n,
                };
                setup.secure = secure;
                setup.threshold = nbo;
            }
            MechanismKind::PracPrfm => {
                let (nbo, secure) = match prac_secure_nbo(nrh, 4, 4, &wave_prac) {
                    Some(nbo) => (nbo, true),
                    None => (1, false),
                };
                setup.dram_mitigation = Box::new(PracMechanism::new(geo, nbo, att_entries));
                setup.rfm_policy = RfmPolicy::PracBackOff {
                    n_ref: 4,
                    n_delay: 4,
                };
                // §3: the JEDEC example pairs PRAC with RFMth = 75.
                setup.raa_threshold = Some(75);
                setup.secure = secure;
                setup.threshold = nbo;
            }
            MechanismKind::Chronus => {
                let (nbo, secure) = match threshold_override {
                    Some(nbo) => (
                        nbo.min(256),
                        chronus_security::chronus_max_acts(nbo.min(256), a_normal) < nrh,
                    ),
                    None => match chronus_secure_nbo(nrh, a_normal) {
                        Some(nbo) => (nbo, true),
                        None => (1, false),
                    },
                };
                setup.dram_mitigation = Box::new(ChronusMechanism::new(geo, nbo, att_entries));
                setup.rfm_policy = RfmPolicy::ChronusBackOff;
                setup.secure = secure;
                setup.threshold = nbo;
            }
            MechanismKind::ChronusPb => {
                // CCU removes the timing penalty but the PRAC back-off
                // policy stays wave-attack-limited, and the 8-bit counter
                // caps the threshold at 256 (§7.1).
                let (nbo, secure) = match prac_secure_nbo(nrh, 4, 4, &wave_base) {
                    Some(nbo) => (nbo.min(256), true),
                    None => (1, false),
                };
                setup.dram_mitigation =
                    Box::new(ChronusMechanism::chronus_pb(geo, nbo, att_entries));
                setup.rfm_policy = RfmPolicy::PracBackOff {
                    n_ref: 4,
                    n_delay: 4,
                };
                setup.secure = secure;
                setup.threshold = nbo;
            }
            MechanismKind::Graphene => {
                let g = Graphene::for_nrh(geo, nrh, acts_per_epoch, epoch_cycles);
                setup.threshold = g.threshold();
                setup.ctrl_mitigation = Box::new(g);
            }
            MechanismKind::Hydra => {
                let cfg = HydraConfig::for_nrh(nrh, epoch_cycles);
                setup.threshold = cfg.row_threshold;
                setup.ctrl_mitigation = Box::new(Hydra::new(geo, cfg));
            }
            MechanismKind::Para => {
                let p = Para::for_nrh(nrh, 2, geo.rows, seed);
                setup.secure = p.is_secure();
                setup.threshold = (p.p() * 1000.0) as u32;
                setup.ctrl_mitigation = Box::new(p);
            }
            MechanismKind::Abacus => {
                let a = Abacus::for_nrh(geo, nrh, acts_per_epoch, epoch_cycles);
                setup.threshold = a.threshold();
                setup.ctrl_mitigation = Box::new(a);
            }
        }
        setup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prac4_at_nrh20_is_most_aggressive_but_secure() {
        let s = MechanismKind::Prac4.build(20, Geometry::ddr5(), 0);
        assert!(s.secure, "paper: PRAC-4 is securable at N_RH = 20");
        // The wave attack forces an aggressive back-off threshold (the
        // paper derives N_BO = 1; our Eq. 2 model admits a slightly larger
        // value — see EXPERIMENTS.md). Chronus, immune to the wave attack,
        // runs at N_BO = 16 for the same N_RH.
        let chronus = MechanismKind::Chronus.build(20, Geometry::ddr5(), 0);
        assert!(
            s.threshold < chronus.threshold / 2,
            "PRAC N_BO {} vs Chronus N_BO {}",
            s.threshold,
            chronus.threshold
        );
        assert_eq!(s.timing_mode, TimingMode::Prac);
        assert_eq!(
            s.rfm_policy,
            RfmPolicy::PracBackOff {
                n_ref: 4,
                n_delay: 4
            }
        );
    }

    #[test]
    fn prac_relaxes_at_high_nrh() {
        let lo = MechanismKind::Prac4
            .build(64, Geometry::ddr5(), 0)
            .threshold;
        let hi = MechanismKind::Prac4
            .build(1024, Geometry::ddr5(), 0)
            .threshold;
        assert!(hi > lo);
    }

    #[test]
    fn chronus_nbo_is_nrh_minus_four() {
        let s = MechanismKind::Chronus.build(20, Geometry::ddr5(), 0);
        assert!(s.secure);
        assert_eq!(s.threshold, 16, "§11: N_BO = 16 at N_RH = 20");
        assert_eq!(s.timing_mode, TimingMode::Baseline, "CCU keeps timings");
        assert_eq!(s.rfm_policy, RfmPolicy::ChronusBackOff);
        let s1k = MechanismKind::Chronus.build(1024, Geometry::ddr5(), 0);
        assert_eq!(s1k.threshold, 256, "8-bit counter cap");
    }

    #[test]
    fn chronus_pb_uses_prac_policy_with_baseline_timing() {
        let s = MechanismKind::ChronusPb.build(128, Geometry::ddr5(), 0);
        assert_eq!(s.timing_mode, TimingMode::Baseline);
        assert!(matches!(
            s.rfm_policy,
            RfmPolicy::PracBackOff { n_ref: 4, .. }
        ));
        // Wave-attack-limited: threshold well below Chronus's.
        let chronus = MechanismKind::Chronus.build(128, Geometry::ddr5(), 0);
        assert!(s.threshold < chronus.threshold);
    }

    #[test]
    fn para_flags_insecure_at_low_nrh() {
        // p = 4(1 − 10^(−15/N_RH)) exceeds 1 below N_RH ≈ 120.
        assert!(!MechanismKind::Para.build(20, Geometry::ddr5(), 0).secure);
        assert!(!MechanismKind::Para.build(64, Geometry::ddr5(), 0).secure);
        assert!(MechanismKind::Para.build(256, Geometry::ddr5(), 0).secure);
    }

    #[test]
    fn prac_prfm_sets_raa_75() {
        let s = MechanismKind::PracPrfm.build(256, Geometry::ddr5(), 0);
        assert_eq!(s.raa_threshold, Some(75));
    }

    #[test]
    fn headline_list_matches_figures() {
        assert_eq!(MechanismKind::headline().len(), 7);
        assert!(MechanismKind::headline().contains(&MechanismKind::Chronus));
    }

    #[test]
    fn abacus_prefers_its_own_mapping() {
        assert_eq!(
            MechanismKind::Abacus.preferred_mapping(),
            AddressMapping::AbacusMop
        );
        assert_eq!(
            MechanismKind::Chronus.preferred_mapping(),
            AddressMapping::Mop
        );
    }

    #[test]
    fn threshold_override_forces_and_reclassifies() {
        // The paper's published PRAC-4 configuration at N_RH = 20 is
        // N_BO = 1 — forcing it keeps the mechanism secure (tighter than
        // necessary under our model).
        let s = MechanismKind::Prac4.build_with_threshold(20, Geometry::ddr5(), 0, Some(1));
        assert_eq!(s.threshold, 1);
        assert!(s.secure);
        // Forcing a lax threshold flips the secure flag.
        let lax = MechanismKind::Prac4.build_with_threshold(20, Geometry::ddr5(), 0, Some(64));
        assert_eq!(lax.threshold, 64);
        assert!(!lax.secure);
        // Chronus: anything ≤ N_RH − A_normal − 1 stays secure.
        let c = MechanismKind::Chronus.build_with_threshold(20, Geometry::ddr5(), 0, Some(8));
        assert_eq!(c.threshold, 8);
        assert!(c.secure);
        let c_bad = MechanismKind::Chronus.build_with_threshold(20, Geometry::ddr5(), 0, Some(18));
        assert!(!c_bad.secure);
    }

    #[test]
    fn all_mechanisms_build_at_every_sweep_point() {
        for &kind in MechanismKind::all() {
            for nrh in [1024u32, 512, 256, 128, 64, 32, 20] {
                let s = kind.build(nrh, Geometry::ddr5(), 1);
                assert_eq!(s.nrh, nrh);
                assert!(!s.kind.label().is_empty());
            }
        }
    }
}
