//! Chronus (§7): Concurrent Counter Update + Chronus Back-Off.
//!
//! **CCU (§7.1).** Activation counters live in a small *counter subarray*
//! physically separate from the data rows. The counter read–increment–write
//! happens concurrently with the data-row access (subarray-level
//! parallelism), so the device keeps baseline DDR5 timings — the mechanism
//! does its counter work in [`DramMitigation::on_activate`] and the device
//! runs in [`chronus_dram::TimingMode::Baseline`]. Counters are 8 bits wide
//! and updated by the Appendix A decrementer; a back-off triggers when the
//! hardware budget (`256`, or `N_BO` for configured thresholds below 256)
//! is exhausted.
//!
//! **Chronus Back-Off (§7.2).** The chip keeps `alert_n` asserted until
//! *every* row whose count reached `N_BO` has had its victims refreshed
//! ([`DramMitigation::alert_still_needed`]), and imposes no delay period.
//! Setting `dynamic_backoff = false` yields **Chronus-PB** (§9): CCU with
//! PRAC's fixed-count back-off policy.

use chronus_dram::{BankId, Cycle, DramMitigation, Geometry, MitigationStats, RfmOutcome, RowId};

use crate::att::Att;

/// The Chronus on-die mechanism state.
#[derive(Debug)]
pub struct ChronusMechanism {
    geo: Geometry,
    nbo: u32,
    dynamic_backoff: bool,
    counters: Vec<Vec<u32>>,
    att: Vec<Att>,
    /// Rows at or above `N_BO`, per bank — the exact set Chronus Back-Off
    /// must service before `alert_n` de-asserts (§7.2). Tracked explicitly
    /// (not through the ATT) so equal-count rows can never be lost.
    hot_list: Vec<Vec<RowId>>,
    /// Rows currently at or above `N_BO`, per rank (drives
    /// `alert_still_needed`).
    hot_rows: Vec<u32>,
    borrow_toggle: Vec<bool>,
    stats: MitigationStats,
}

impl ChronusMechanism {
    /// Full Chronus: CCU + Chronus Back-Off.
    pub fn new(geo: Geometry, nbo: u32, att_entries: usize) -> Self {
        Self::with_policy(geo, nbo, att_entries, true)
    }

    /// Chronus-PB: CCU with PRAC's back-off policy (§9).
    pub fn chronus_pb(geo: Geometry, nbo: u32, att_entries: usize) -> Self {
        Self::with_policy(geo, nbo, att_entries, false)
    }

    fn with_policy(geo: Geometry, nbo: u32, att_entries: usize, dynamic_backoff: bool) -> Self {
        assert!(nbo >= 1, "N_BO must be at least 1");
        assert!(
            nbo <= 256,
            "the 8-bit decrementer counter caps N_BO at 256 (§7.1)"
        );
        let banks = geo.total_banks();
        Self {
            geo,
            nbo,
            dynamic_backoff,
            counters: (0..banks).map(|_| vec![0u32; geo.rows]).collect(),
            att: (0..banks).map(|_| Att::new(att_entries)).collect(),
            hot_list: (0..banks).map(|_| Vec::new()).collect(),
            hot_rows: vec![0; geo.ranks],
            borrow_toggle: vec![false; geo.ranks],
            stats: MitigationStats::default(),
        }
    }

    /// The configured back-off threshold.
    pub fn nbo(&self) -> u32 {
        self.nbo
    }

    /// Whether this instance runs Chronus Back-Off (vs. Chronus-PB).
    pub fn is_dynamic(&self) -> bool {
        self.dynamic_backoff
    }

    fn reset_row(&mut self, flat: usize, rank: usize, row: RowId) {
        if self.counters[flat][row as usize] >= self.nbo {
            self.hot_rows[rank] = self.hot_rows[rank].saturating_sub(1);
            self.hot_list[flat].retain(|&r| r != row);
        }
        self.counters[flat][row as usize] = 0;
        self.att[flat].remove(row);
    }
}

impl DramMitigation for ChronusMechanism {
    fn on_activate(&mut self, bank: BankId, row: RowId, _now: Cycle) -> bool {
        // CCU: the counter subarray updates concurrently with the access.
        let flat = bank.flat(&self.geo);
        let c = &mut self.counters[flat][row as usize];
        *c += 1;
        let count = *c;
        self.stats.counter_updates += 1;
        self.att[flat].observe(row, count);
        if count == self.nbo {
            self.hot_rows[bank.rank as usize] += 1;
            self.hot_list[flat].push(row);
        }
        if count >= self.nbo {
            self.stats.back_offs += 1;
            true
        } else {
            false
        }
    }

    fn on_precharge(&mut self, _bank: BankId, _row: RowId, _now: Cycle) -> bool {
        // No precharge-time work: this is what removes PRAC's timing
        // inflation.
        false
    }

    fn on_rfm(&mut self, bank: BankId, _now: Cycle) -> RfmOutcome {
        let flat = bank.flat(&self.geo);
        let rank = bank.rank as usize;
        let candidate = if self.dynamic_backoff {
            // Chronus services rows that reached N_BO; an RFM that finds
            // none in this bank refreshes nothing (other banks of the rank
            // may still have hot rows).
            self.hot_list[flat].first().copied()
        } else {
            // Chronus-PB follows PRAC: always service the hottest row.
            self.att[flat].peek_max().map(|(row, _)| row)
        };
        match candidate {
            Some(row) => {
                self.reset_row(flat, rank, row);
                self.stats.rfm_refreshes += 1;
                RfmOutcome {
                    refreshed_aggressor: Some(row),
                }
            }
            None => RfmOutcome::default(),
        }
    }

    fn on_periodic_refresh(
        &mut self,
        rank: usize,
        _now: Cycle,
        serviced: &mut Vec<(BankId, RowId)>,
    ) {
        self.borrow_toggle[rank] = !self.borrow_toggle[rank];
        if !self.borrow_toggle[rank] {
            return;
        }
        let base = rank * self.geo.banks_per_rank();
        for i in 0..self.geo.banks_per_rank() {
            let flat = base + i;
            if let Some((row, _)) = self.att[flat].peek_max() {
                self.reset_row(flat, rank, row);
                self.stats.borrowed_refreshes += 1;
                serviced.push((BankId::from_flat(flat, &self.geo), row));
            }
        }
    }

    fn alert_still_needed(&self, rank: usize) -> bool {
        self.dynamic_backoff && self.hot_rows[rank] > 0
    }

    fn counter_of(&self, bank: BankId, row: RowId) -> Option<u32> {
        Some(self.counters[bank.flat(&self.geo)][row as usize])
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn kind_name(&self) -> &'static str {
        if self.dynamic_backoff {
            "chronus"
        } else {
            "chronus-pb"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BankId = BankId::new(0, 0, 0);
    const B1: BankId = BankId::new(0, 0, 1);

    fn mech(nbo: u32) -> ChronusMechanism {
        ChronusMechanism::new(Geometry::tiny(), nbo, 4)
    }

    #[test]
    fn counter_updates_at_activate() {
        let mut m = mech(100);
        assert!(!m.on_activate(B, 5, 0));
        assert_eq!(m.counter_of(B, 5), Some(1));
        assert!(!m.on_precharge(B, 5, 10));
        assert_eq!(m.counter_of(B, 5), Some(1), "precharge does no work");
    }

    #[test]
    fn alert_asserted_and_held_until_serviced() {
        let mut m = mech(2);
        assert!(!m.on_activate(B, 5, 0));
        assert!(m.on_activate(B, 5, 1));
        assert!(m.alert_still_needed(0));
        let out = m.on_rfm(B, 10);
        assert_eq!(out.refreshed_aggressor, Some(5));
        assert!(!m.alert_still_needed(0));
    }

    #[test]
    fn alert_held_across_multiple_hot_rows() {
        let mut m = mech(2);
        for row in [5u32, 9] {
            m.on_activate(B, row, 0);
            m.on_activate(B, row, 1);
        }
        // Two hot rows in one bank: one RFM services one of them.
        assert!(m.alert_still_needed(0));
        assert!(m.on_rfm(B, 10).refreshed_aggressor.is_some());
        assert!(m.alert_still_needed(0), "second hot row still pending");
        assert!(m.on_rfm(B, 11).refreshed_aggressor.is_some());
        assert!(!m.alert_still_needed(0));
    }

    #[test]
    fn hot_rows_in_other_banks_hold_the_alert() {
        let mut m = mech(2);
        m.on_activate(B, 5, 0);
        m.on_activate(B, 5, 1);
        m.on_activate(B1, 9, 2);
        m.on_activate(B1, 9, 3);
        assert!(m.alert_still_needed(0));
        m.on_rfm(B, 10);
        assert!(m.alert_still_needed(0), "bank 1 still hot");
        m.on_rfm(B1, 11);
        assert!(!m.alert_still_needed(0));
    }

    #[test]
    fn dynamic_rfm_skips_cold_banks() {
        let mut m = mech(10);
        m.on_activate(B, 5, 0); // count 1 < N_BO
        assert_eq!(m.on_rfm(B, 1).refreshed_aggressor, None);
        assert_eq!(m.counter_of(B, 5), Some(1), "cold row untouched");
    }

    #[test]
    fn chronus_pb_services_any_hottest_row() {
        let mut m = ChronusMechanism::chronus_pb(Geometry::tiny(), 10, 4);
        m.on_activate(B, 5, 0);
        assert_eq!(m.on_rfm(B, 1).refreshed_aggressor, Some(5));
        assert!(!m.alert_still_needed(0), "PB never holds the alert");
        assert_eq!(m.kind_name(), "chronus-pb");
    }

    #[test]
    fn borrowed_refresh_defuses_hot_rows() {
        let mut m = mech(2);
        m.on_activate(B, 5, 0);
        m.on_activate(B, 5, 1);
        assert!(m.alert_still_needed(0));
        let mut serviced = Vec::new();
        m.on_periodic_refresh(0, 100, &mut serviced);
        assert!(serviced.contains(&(B, 5)));
        assert!(!m.alert_still_needed(0));
    }

    #[test]
    #[should_panic(expected = "8-bit decrementer")]
    fn nbo_above_counter_width_is_rejected() {
        let _ = ChronusMechanism::new(Geometry::tiny(), 257, 4);
    }
}
