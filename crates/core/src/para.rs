//! PARA: Probabilistic Adjacent Row Activation [Kim+, ISCA'14].
//!
//! Stateless: on every activation, with probability `p`, refresh one
//! randomly chosen neighbour within the blast radius. The paper's
//! evaluation configures `p` so that the probability a specific victim of
//! a row hammered `N_RH` times never gets refreshed stays below a failure
//! target (we use 1e-15 per aggressor epoch):
//! `(1 − p/4)^N_RH ≤ target  ⇒  p = 4·(1 − target^(1/N_RH))`.
//! Below `N_RH ≈ 27` the required `p` exceeds 1 and no secure
//! configuration exists — these are the red-edged "not safe" bars of
//! Fig. 4/8.

use chronus_ctrl::{CtrlMitigation, CtrlMitigationStats, MitigationAction};
use chronus_dram::{Cycle, DramAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The PARA mechanism.
#[derive(Debug)]
pub struct Para {
    p: f64,
    blast_radius: u32,
    rows: usize,
    rng: StdRng,
    secure: bool,
    stats: CtrlMitigationStats,
}

impl Para {
    /// PARA configured for `nrh` with the 1e-15 failure target.
    pub fn for_nrh(nrh: u32, blast_radius: u32, rows: usize, seed: u64) -> Self {
        let (p, secure) = Self::probability_for(nrh, 1e-15);
        Self {
            p,
            blast_radius,
            rows,
            rng: StdRng::seed_from_u64(seed),
            secure,
            stats: CtrlMitigationStats::default(),
        }
    }

    /// The refresh probability needed for `nrh` at `target` failure
    /// probability, and whether it is realisable (`p ≤ 1`).
    pub fn probability_for(nrh: u32, target: f64) -> (f64, bool) {
        assert!(nrh >= 1);
        assert!((0.0..1.0).contains(&target));
        let p = 4.0 * (1.0 - target.powf(1.0 / nrh as f64));
        if p > 1.0 {
            (1.0, false)
        } else {
            (p, true)
        }
    }

    /// The configured per-activation refresh probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Whether the configuration meets the failure target.
    pub fn is_secure(&self) -> bool {
        self.secure
    }
}

impl CtrlMitigation for Para {
    fn on_activate(&mut self, addr: DramAddr, _now: Cycle, actions: &mut Vec<MitigationAction>) {
        if self.rng.gen::<f64>() >= self.p {
            return;
        }
        self.stats.triggers += 1;
        // Pick one victim uniformly among the ±blast_radius neighbours.
        let r = self.blast_radius as i64;
        let mut offset: i64 = self.rng.gen_range(1..=r);
        if self.rng.gen::<bool>() {
            offset = -offset;
        }
        let victim = addr.row as i64 + offset;
        if victim < 0 || victim >= self.rows as i64 {
            return; // edge rows: the out-of-bank neighbour needs no refresh
        }
        self.stats.victim_refreshes += 1;
        actions.push(MitigationAction::RefreshRow {
            bank: addr.bank,
            row: victim as u32,
        });
    }

    fn stats(&self) -> CtrlMitigationStats {
        self.stats
    }

    fn kind_name(&self) -> &'static str {
        "para"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::BankId;

    #[test]
    fn probability_matches_closed_form() {
        let (p, secure) = Para::probability_for(1024, 1e-15);
        assert!(secure);
        assert!((p - 0.133).abs() < 0.01, "got {p}");
        // At N_RH = 32 the required p exceeds 1: no secure configuration
        // (PARA degrades into refresh-per-activation and is flagged).
        let (p32, secure32) = Para::probability_for(32, 1e-15);
        assert!(!secure32);
        assert_eq!(p32, 1.0);
    }

    #[test]
    fn very_low_nrh_is_insecure() {
        let (p, secure) = Para::probability_for(20, 1e-15);
        assert_eq!(p, 1.0);
        assert!(!secure);
    }

    #[test]
    fn probability_decreases_with_nrh() {
        let mut prev = 2.0;
        for nrh in [128u32, 256, 512, 1024, 4096] {
            let (p, _) = Para::probability_for(nrh, 1e-15);
            assert!(p < prev, "nrh={nrh}: {p} !< {prev}");
            prev = p;
        }
    }

    #[test]
    fn trigger_rate_tracks_p() {
        let mut para = Para::for_nrh(128, 2, 1024, 42);
        let p = para.p();
        let addr = DramAddr::new(BankId::new(0, 0, 0), 500, 0);
        let mut actions = Vec::new();
        let n = 20_000;
        for _ in 0..n {
            para.on_activate(addr, 0, &mut actions);
        }
        let rate = para.stats().triggers as f64 / n as f64;
        assert!((rate - p).abs() < 0.02, "rate {rate} vs p {p}");
        // All refreshed rows are within the blast radius.
        for a in &actions {
            let MitigationAction::RefreshRow { row, .. } = a else {
                panic!("PARA only refreshes single rows");
            };
            let d = (*row as i64 - 500).unsigned_abs();
            assert!((1..=2).contains(&d));
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let addr = DramAddr::new(BankId::new(0, 0, 0), 10, 0);
        let run = |seed: u64| {
            let mut para = Para::for_nrh(64, 2, 1024, seed);
            let mut actions = Vec::new();
            for _ in 0..100 {
                para.on_activate(addr, 0, &mut actions);
            }
            actions.len()
        };
        assert_eq!(run(7), run(7));
    }
}
