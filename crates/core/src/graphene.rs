//! Graphene [Park+, MICRO'20]: Misra–Gries tracking in the memory
//! controller.
//!
//! One Misra–Gries summary per bank; when a row's estimated count reaches
//! the threshold `T = N_RH / 2`, the controller preventively refreshes all
//! victims of that row and re-arms the counter. Tables are sized so the
//! spillover can never mask a threshold crossing within one refresh window
//! (`entries ≥ W / T`, where `W` is the maximum activations a bank can
//! serve in `tREFW`), and all state resets every `tREFW` epoch.
//! Because the number of counters grows as `1/N_RH`, Graphene's CAM
//! storage explodes at low thresholds (Fig. 11: 50.3× from `N_RH` = 1K to
//! 20).

use chronus_ctrl::{CtrlMitigation, CtrlMitigationStats, MitigationAction};
use chronus_dram::{Cycle, DramAddr, Geometry};

use crate::misra_gries::MisraGries;

/// The Graphene mechanism.
#[derive(Debug)]
pub struct Graphene {
    geo: Geometry,
    threshold: u32,
    tables: Vec<MisraGries>,
    epoch_cycles: u64,
    epoch_end: Cycle,
    stats: CtrlMitigationStats,
}

impl Graphene {
    /// Graphene configured for `nrh`.
    ///
    /// `max_acts_per_epoch` is the per-bank activation budget within one
    /// refresh window (`tREFW / tRC`), which sizes the tables.
    pub fn for_nrh(geo: Geometry, nrh: u32, max_acts_per_epoch: u64, epoch_cycles: u64) -> Self {
        let threshold = (nrh / 2).max(1);
        let entries = (max_acts_per_epoch / threshold as u64 + 1) as usize;
        Self {
            geo,
            threshold,
            tables: (0..geo.total_banks())
                .map(|_| MisraGries::new(entries))
                .collect(),
            epoch_cycles,
            epoch_end: epoch_cycles,
            stats: CtrlMitigationStats::default(),
        }
    }

    /// The trigger threshold `T`.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Counters per bank table.
    pub fn entries_per_bank(&self) -> usize {
        self.tables[0].capacity()
    }
}

impl CtrlMitigation for Graphene {
    fn on_activate(&mut self, addr: DramAddr, now: Cycle, actions: &mut Vec<MitigationAction>) {
        if now >= self.epoch_end {
            for t in &mut self.tables {
                t.clear();
            }
            self.epoch_end = now - now % self.epoch_cycles + self.epoch_cycles;
        }
        let flat = addr.bank.flat(&self.geo);
        let est = self.tables[flat].observe(addr.row);
        if est >= self.threshold {
            self.tables[flat].reset_row(addr.row);
            self.stats.triggers += 1;
            self.stats.victim_refreshes += 1;
            actions.push(MitigationAction::RefreshVictims {
                bank: addr.bank,
                aggressor: addr.row,
            });
        }
    }

    fn stats(&self) -> CtrlMitigationStats {
        self.stats
    }

    fn kind_name(&self) -> &'static str {
        "graphene"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::BankId;

    fn mech(nrh: u32) -> Graphene {
        Graphene::for_nrh(Geometry::tiny(), nrh, 680_000, 51_200_000)
    }

    #[test]
    fn triggers_at_half_nrh() {
        let mut g = mech(64);
        assert_eq!(g.threshold(), 32);
        let addr = DramAddr::new(BankId::new(0, 0, 0), 5, 0);
        let mut actions = Vec::new();
        for _ in 0..31 {
            g.on_activate(addr, 0, &mut actions);
        }
        assert!(actions.is_empty());
        g.on_activate(addr, 0, &mut actions);
        assert_eq!(
            actions,
            vec![MitigationAction::RefreshVictims {
                bank: addr.bank,
                aggressor: 5
            }]
        );
    }

    #[test]
    fn rearms_after_trigger() {
        let mut g = mech(8);
        let addr = DramAddr::new(BankId::new(0, 0, 0), 5, 0);
        let mut actions = Vec::new();
        for _ in 0..16 {
            g.on_activate(addr, 0, &mut actions);
        }
        assert_eq!(actions.len(), 4, "T=4 → trigger every 4 activations");
    }

    #[test]
    fn table_size_scales_inversely_with_nrh() {
        let big = mech(1024).entries_per_bank();
        let small = mech(32).entries_per_bank();
        assert!(small > big * 20, "{small} vs {big}");
    }

    #[test]
    fn epoch_reset_clears_counts() {
        let mut g = Graphene::for_nrh(Geometry::tiny(), 64, 680_000, 1000);
        let addr = DramAddr::new(BankId::new(0, 0, 0), 5, 0);
        let mut actions = Vec::new();
        for _ in 0..31 {
            g.on_activate(addr, 0, &mut actions);
        }
        // Cross the epoch boundary: counts restart.
        g.on_activate(addr, 1500, &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn separate_banks_tracked_independently() {
        let mut g = mech(8);
        let a0 = DramAddr::new(BankId::new(0, 0, 0), 5, 0);
        let a1 = DramAddr::new(BankId::new(0, 0, 1), 5, 0);
        let mut actions = Vec::new();
        for _ in 0..3 {
            g.on_activate(a0, 0, &mut actions);
            g.on_activate(a1, 0, &mut actions);
        }
        assert!(actions.is_empty());
        g.on_activate(a0, 0, &mut actions);
        assert_eq!(actions.len(), 1);
    }
}
