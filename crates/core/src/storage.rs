//! Storage-overhead models (Fig. 11 and Fig. 13).
//!
//! The paper evaluates storage for a module with 64 banks and 128K rows
//! per bank. Counters are sized `⌈log2(N_RH)⌉ + 1` bits (count up to and
//! past the threshold), which reproduces the 45.5 % shrink of
//! Chronus/PRAC DRAM storage from `N_RH` = 1K (11-bit) to 20 (6-bit).

use chronus_dram::Geometry;
use serde::{Deserialize, Serialize};

/// Where a mechanism's state lives and how much of it there is (bits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageBreakdown {
    /// Bits stored inside the DRAM array (cheap, high density).
    pub dram_bits: u64,
    /// SRAM bits in the controller / CPU.
    pub sram_bits: u64,
    /// CAM bits in the controller / CPU (content-addressable: expensive).
    pub cam_bits: u64,
}

impl StorageBreakdown {
    /// Total bits, regardless of technology.
    pub fn total_bits(&self) -> u64 {
        self.dram_bits + self.sram_bits + self.cam_bits
    }

    /// Total in MiB.
    pub fn total_mib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0 / 1024.0
    }

    /// CPU-side (SRAM + CAM) bytes.
    pub fn cpu_bytes(&self) -> u64 {
        (self.sram_bits + self.cam_bits) / 8
    }
}

/// Activation-counter width for a threshold of `nrh`.
pub fn counter_bits(nrh: u32) -> u32 {
    (32 - nrh.next_power_of_two().leading_zeros() - 1).max(1) + 1
}

/// Row-address width for `rows` rows.
pub fn row_bits(rows: usize) -> u32 {
    rows.next_power_of_two().trailing_zeros().max(1)
}

/// The geometry the paper's storage figures assume (64 banks × 128K rows).
pub fn fig11_geometry() -> Geometry {
    Geometry {
        rows: 131_072,
        ..Geometry::ddr5()
    }
}

/// PRAC: one counter per row, stored with the row's data in DRAM.
pub fn prac_storage(geo: &Geometry, nrh: u32) -> StorageBreakdown {
    StorageBreakdown {
        dram_bits: geo.total_banks() as u64 * geo.rows as u64 * counter_bits(nrh) as u64,
        ..Default::default()
    }
}

/// Chronus: one counter per row in the counter subarray — same DRAM bit
/// count as PRAC (Fig. 11 plots them identically), plus a per-bank ATT
/// that is negligible and charged to SRAM-equivalent on-die latches.
pub fn chronus_storage(geo: &Geometry, nrh: u32) -> StorageBreakdown {
    let att_bits = geo.total_banks() as u64 * 4 * (row_bits(geo.rows) + counter_bits(nrh)) as u64;
    StorageBreakdown {
        dram_bits: geo.total_banks() as u64 * geo.rows as u64 * counter_bits(nrh) as u64,
        sram_bits: att_bits,
        ..Default::default()
    }
}

/// Graphene: per-bank Misra–Gries tables in CAM; entry = row tag + count.
/// `acts_per_epoch` is the per-bank activation budget in one `tREFW`.
pub fn graphene_storage(geo: &Geometry, nrh: u32, acts_per_epoch: u64) -> StorageBreakdown {
    let threshold = (nrh / 2).max(1) as u64;
    let entries = acts_per_epoch / threshold + 1;
    let entry_bits = (row_bits(geo.rows) + counter_bits(nrh)) as u64;
    StorageBreakdown {
        cam_bits: geo.total_banks() as u64 * entries * entry_bits,
        ..Default::default()
    }
}

/// Hydra: GCT + RCT cache in SRAM, per-row counters in DRAM.
pub fn hydra_storage(geo: &Geometry, nrh: u32) -> StorageBreakdown {
    let groups = geo.rows.div_ceil(128) as u64;
    let gct_bits = geo.total_banks() as u64 * groups * counter_bits(nrh) as u64;
    let cache_entries = 4096u64;
    let tag_bits = (row_bits(geo.rows) + 6) as u64; // row + bank tag
    let cache_bits = cache_entries * (tag_bits + counter_bits(nrh) as u64 + 1);
    StorageBreakdown {
        dram_bits: geo.total_banks() as u64 * geo.rows as u64 * counter_bits(nrh) as u64,
        sram_bits: gct_bits + cache_bits,
        ..Default::default()
    }
}

/// PRFM: one RAA counter per bank in the controller.
pub fn prfm_storage(geo: &Geometry, nrh: u32) -> StorageBreakdown {
    StorageBreakdown {
        sram_bits: geo.total_banks() as u64 * counter_bits(nrh) as u64,
        ..Default::default()
    }
}

/// ABACuS: one shared table; entry = row tag + counter + per-bank sibling
/// activation vector (Fig. 13).
pub fn abacus_storage(geo: &Geometry, nrh: u32, acts_per_epoch: u64) -> StorageBreakdown {
    let threshold = (nrh / 2).max(1) as u64;
    let entries = acts_per_epoch / threshold + 1;
    let entry_bits = (row_bits(geo.rows) + counter_bits(nrh)) as u64 + geo.total_banks() as u64;
    StorageBreakdown {
        cam_bits: entries * entry_bits,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS_PER_EPOCH: u64 = 680_000; // 32 ms / 47 ns

    #[test]
    fn counter_bits_match_paper_scaling() {
        assert_eq!(counter_bits(1024), 11);
        assert_eq!(counter_bits(20), 6);
        assert_eq!(counter_bits(512), 10);
        assert_eq!(counter_bits(32), 6);
        // The 1K → 20 shrink is 45.5 % (Fig. 11).
        let shrink: f64 = 1.0 - 6.0 / 11.0;
        assert!((shrink - 0.455).abs() < 0.01);
    }

    #[test]
    fn prac_storage_is_about_ten_mib_at_1k() {
        let s = prac_storage(&fig11_geometry(), 1024);
        let mib = s.total_mib();
        assert!((10.0..11.5).contains(&mib), "got {mib}");
    }

    #[test]
    fn chronus_equals_prac_in_dram() {
        let g = fig11_geometry();
        for nrh in [1024u32, 128, 20] {
            assert_eq!(
                chronus_storage(&g, nrh).dram_bits,
                prac_storage(&g, nrh).dram_bits
            );
        }
    }

    #[test]
    fn graphene_explodes_at_low_nrh() {
        let g = fig11_geometry();
        let hi = graphene_storage(&g, 1024, ACTS_PER_EPOCH).total_bits();
        let lo = graphene_storage(&g, 20, ACTS_PER_EPOCH).total_bits();
        let ratio = lo as f64 / hi as f64;
        // Paper: 50.3× growth from 1K to 20.
        assert!((30.0..80.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prfm_is_tiny() {
        let g = fig11_geometry();
        let s = prfm_storage(&g, 1024);
        // Paper annotation: 88 B at N_RH = 1K.
        assert_eq!(s.cpu_bytes(), 88);
        assert_eq!(prfm_storage(&g, 20).cpu_bytes(), 48);
    }

    #[test]
    fn abacus_cpu_storage_is_kilobytes_not_megabytes() {
        let g = fig11_geometry();
        let at_1k = abacus_storage(&g, 1024, ACTS_PER_EPOCH).cpu_bytes();
        let at_20 = abacus_storage(&g, 20, ACTS_PER_EPOCH).cpu_bytes();
        assert!(at_1k < 64 * 1024, "got {at_1k}");
        assert!(at_20 > at_1k * 10, "scaling: {at_1k} → {at_20}");
        // And both are far below Chronus's DRAM footprint (Fig. 13's point:
        // ABACuS is small, but lives in expensive CPU storage).
        assert!(at_20 < chronus_storage(&g, 20).dram_bits / 8);
    }

    #[test]
    fn hydra_storage_shrinks_with_nrh() {
        let g = fig11_geometry();
        let hi = hydra_storage(&g, 1024);
        let lo = hydra_storage(&g, 20);
        assert!(lo.dram_bits < hi.dram_bits);
        assert!(lo.sram_bits < hi.sram_bits);
    }
}
