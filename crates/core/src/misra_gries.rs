//! Misra–Gries frequent-item counting with a spillover counter.
//!
//! Graphene and ABACuS both build on this structure [Misra & Gries '82;
//! Park+, MICRO'20]. The table guarantees that any row activated `n` times
//! within an epoch has an estimated count of at least `n − spillover`, so
//! a mechanism that triggers at estimated count `T` can never let a true
//! count exceed `T + spillover_max` undetected.

use chronus_dram::RowId;

/// One Misra–Gries summary.
#[derive(Debug, Clone)]
pub struct MisraGries {
    entries: Vec<Option<(RowId, u32)>>,
    spillover: u32,
}

impl MisraGries {
    /// A summary with `capacity` counters.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "need at least one counter");
        Self {
            entries: vec![None; capacity],
            spillover: 0,
        }
    }

    /// Observes one activation of `row`; returns the row's new estimated
    /// count.
    pub fn observe(&mut self, row: RowId) -> u32 {
        for e in self.entries.iter_mut().flatten() {
            if e.0 == row {
                e.1 += 1;
                return e.1;
            }
        }
        if let Some(slot) = self.entries.iter_mut().find(|e| e.is_none()) {
            let est = self.spillover + 1;
            *slot = Some((row, est));
            return est;
        }
        // Table full: if some entry equals the spillover count, replace it;
        // otherwise increment the spillover.
        let spill = self.spillover;
        if let Some(e) = self.entries.iter_mut().flatten().find(|e| e.1 == spill) {
            *e = (row, spill + 1);
            return spill + 1;
        }
        self.spillover += 1;
        self.spillover
    }

    /// The row's estimated count, if tracked.
    pub fn estimate(&self, row: RowId) -> Option<u32> {
        self.entries
            .iter()
            .flatten()
            .find(|e| e.0 == row)
            .map(|e| e.1)
    }

    /// Resets `row`'s counter to the current spillover level (post-refresh
    /// re-arm, as Graphene does).
    pub fn reset_row(&mut self, row: RowId) {
        let spill = self.spillover;
        for e in self.entries.iter_mut().flatten() {
            if e.0 == row {
                e.1 = spill;
                return;
            }
        }
    }

    /// Clears the whole summary (epoch reset every `tREFW`).
    pub fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
        self.spillover = 0;
    }

    /// Current spillover counter.
    pub fn spillover(&self) -> u32 {
        self.spillover
    }

    /// Number of counters.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_frequent_rows_exactly_when_table_fits() {
        let mut mg = MisraGries::new(4);
        for _ in 0..10 {
            mg.observe(1);
        }
        for _ in 0..3 {
            mg.observe(2);
        }
        assert_eq!(mg.estimate(1), Some(10));
        assert_eq!(mg.estimate(2), Some(3));
        assert_eq!(mg.spillover(), 0);
    }

    #[test]
    fn spillover_grows_under_many_distinct_rows() {
        let mut mg = MisraGries::new(2);
        for row in 0..100u32 {
            mg.observe(row);
        }
        assert!(mg.spillover() > 0);
    }

    #[test]
    fn undercount_bounded_by_spillover() {
        // Classic MG guarantee: est ≥ true − spillover. Hammer one row
        // amid noise and check its estimate.
        let mut mg = MisraGries::new(4);
        let mut true_count = 0u32;
        for i in 0..500u32 {
            mg.observe(1000);
            true_count += 1;
            mg.observe(i % 97); // noise
        }
        let est = mg.estimate(1000).unwrap_or(0);
        assert!(
            est + mg.spillover() >= true_count,
            "est {est} + spill {} < true {true_count}",
            mg.spillover()
        );
    }

    #[test]
    fn reset_rearms_at_spillover_level() {
        let mut mg = MisraGries::new(2);
        for _ in 0..9 {
            mg.observe(5);
        }
        mg.reset_row(5);
        assert_eq!(mg.estimate(5), Some(mg.spillover()));
    }

    #[test]
    fn clear_resets_everything() {
        let mut mg = MisraGries::new(2);
        for row in 0..50u32 {
            mg.observe(row);
        }
        mg.clear();
        assert_eq!(mg.spillover(), 0);
        assert_eq!(mg.estimate(0), None);
    }
}
