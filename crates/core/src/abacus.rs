//! ABACuS [Olgun+, USENIX Security'24]: all-bank activation counters
//! (Appendix C).
//!
//! Key observation: under interleaved address mappings, workloads touch
//! the *same row address* in many banks at around the same time. ABACuS
//! therefore keeps **one** Misra–Gries counter per sibling-row address
//! (shared across all banks) instead of a counter per (bank, row),
//! shrinking storage dramatically. When a sibling counter reaches
//! `N_RH / 2`, the victims of that row address are refreshed **in every
//! bank**.

use chronus_ctrl::{CtrlMitigation, CtrlMitigationStats, MitigationAction};
use chronus_dram::{BankId, Cycle, DramAddr, Geometry};

use crate::misra_gries::MisraGries;

/// The ABACuS mechanism.
#[derive(Debug)]
pub struct Abacus {
    geo: Geometry,
    threshold: u32,
    table: MisraGries,
    epoch_cycles: u64,
    epoch_end: Cycle,
    stats: CtrlMitigationStats,
}

impl Abacus {
    /// ABACuS configured for `nrh`; the single shared table is sized like
    /// one Graphene bank table (`max_acts_per_epoch / T`).
    pub fn for_nrh(geo: Geometry, nrh: u32, max_acts_per_epoch: u64, epoch_cycles: u64) -> Self {
        let threshold = (nrh / 2).max(1);
        let entries = (max_acts_per_epoch / threshold as u64 + 1) as usize;
        Self {
            geo,
            threshold,
            table: MisraGries::new(entries),
            epoch_cycles,
            epoch_end: epoch_cycles,
            stats: CtrlMitigationStats::default(),
        }
    }

    /// The trigger threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Counters in the shared table.
    pub fn entries(&self) -> usize {
        self.table.capacity()
    }
}

impl CtrlMitigation for Abacus {
    fn on_activate(&mut self, addr: DramAddr, now: Cycle, actions: &mut Vec<MitigationAction>) {
        if now >= self.epoch_end {
            self.table.clear();
            self.epoch_end = now - now % self.epoch_cycles + self.epoch_cycles;
        }
        let est = self.table.observe(addr.row);
        if est >= self.threshold {
            self.table.reset_row(addr.row);
            self.stats.triggers += 1;
            // Refresh the sibling row's victims in every bank.
            for flat in 0..self.geo.total_banks() {
                self.stats.victim_refreshes += 1;
                actions.push(MitigationAction::RefreshVictims {
                    bank: BankId::from_flat(flat, &self.geo),
                    aggressor: addr.row,
                });
            }
        }
    }

    fn stats(&self) -> CtrlMitigationStats {
        self.stats
    }

    fn kind_name(&self) -> &'static str {
        "abacus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mech(nrh: u32) -> Abacus {
        Abacus::for_nrh(Geometry::tiny(), nrh, 680_000, 51_200_000)
    }

    #[test]
    fn sibling_rows_share_one_counter() {
        let mut a = mech(8); // T = 4
        let mut actions = Vec::new();
        // Two activations to row 5 in bank 0, two in bank 1: the shared
        // counter reaches 4 → trigger.
        let b0 = BankId::new(0, 0, 0);
        let b1 = BankId::new(0, 0, 1);
        a.on_activate(DramAddr::new(b0, 5, 0), 0, &mut actions);
        a.on_activate(DramAddr::new(b1, 5, 0), 0, &mut actions);
        a.on_activate(DramAddr::new(b0, 5, 0), 0, &mut actions);
        assert!(actions.is_empty());
        a.on_activate(DramAddr::new(b1, 5, 0), 0, &mut actions);
        assert_eq!(a.stats().triggers, 1);
    }

    #[test]
    fn trigger_refreshes_all_banks() {
        let mut a = mech(2); // T = 1: first activation triggers
        let mut actions = Vec::new();
        a.on_activate(DramAddr::new(BankId::new(0, 0, 0), 5, 0), 0, &mut actions);
        assert_eq!(actions.len(), Geometry::tiny().total_banks());
        let banks: std::collections::HashSet<_> = actions
            .iter()
            .map(|x| match x {
                MitigationAction::RefreshVictims { bank, aggressor } => {
                    assert_eq!(*aggressor, 5);
                    *bank
                }
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(banks.len(), Geometry::tiny().total_banks());
    }

    #[test]
    fn storage_is_one_table_not_per_bank() {
        let a = mech(1024);
        // One shared table of W/T entries (Graphene would hold 64 of them).
        assert_eq!(a.entries(), (680_000 / 512 + 1) as usize);
    }

    #[test]
    fn epoch_reset() {
        let mut a = Abacus::for_nrh(Geometry::tiny(), 8, 680_000, 1000);
        let mut actions = Vec::new();
        for _ in 0..3 {
            a.on_activate(DramAddr::new(BankId::new(0, 0, 0), 5, 0), 0, &mut actions);
        }
        assert!(actions.is_empty());
        a.on_activate(
            DramAddr::new(BankId::new(0, 0, 0), 5, 0),
            1500,
            &mut actions,
        );
        assert!(actions.is_empty(), "epoch reset restarted the count");
    }
}
