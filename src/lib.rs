//! # Chronus
//!
//! A from-scratch Rust reproduction of *"Chronus: Understanding and Securing
//! the Cutting-Edge Industry Solutions to DRAM Read Disturbance"*
//! (HPCA 2025).
//!
//! This facade crate re-exports the workspace sub-crates:
//!
//! * [`dram`] — cycle-level DDR5 device model (banks, timing, commands,
//!   the `alert_n` back-off pin, and the on-DRAM-die mitigation hook).
//! * [`core`] — the paper's contribution: PRAC, Chronus (CCU + Chronus
//!   Back-Off), PRFM, and the academic baselines Graphene, Hydra, PARA and
//!   ABACuS, with secure-configuration derivation.
//! * [`ctrl`] — memory controller: FR-FCFS+Cap scheduling, address mapping,
//!   refresh, and the RFM/back-off state machine.
//! * [`cpu`] — trace-driven out-of-order cores and a shared last-level cache.
//! * [`energy`] — DRAMPower-style energy accounting.
//! * [`security`] — analytical wave-attack models and secure-threshold
//!   search (Fig. 3), plus the §11 bandwidth-consumption bounds.
//! * [`workloads`] — synthetic trace generation standing in for the paper's
//!   SPEC/TPC/MediaBench/YCSB traces.
//! * [`sim`] — full-system wiring and parallel experiment runner.
//! * [`grid`] — sharded, cached, resumable experiment-grid orchestration
//!   (declarative cell specs, content-addressed result store, `--shard i/N`
//!   partitioning with byte-identical merge).
//!
//! ## Quickstart
//!
//! ```
//! use chronus::sim::{SimConfig, System};
//! use chronus::core::MechanismKind;
//! use chronus::workloads::synthetic_app;
//!
//! let mut cfg = SimConfig::four_core();
//! cfg.mechanism = MechanismKind::Chronus;
//! cfg.nrh = 1024;
//! let traces = vec![synthetic_app("429.mcf", 1).unwrap().generate(10_000, 7)];
//! cfg.num_cores = 1;
//! let report = System::build(&cfg).run(traces);
//! assert!(report.total_instructions() >= 10_000);
//! ```
pub use chronus_core as core;
pub use chronus_cpu as cpu;
pub use chronus_ctrl as ctrl;
pub use chronus_dram as dram;
pub use chronus_energy as energy;
pub use chronus_grid as grid;
pub use chronus_security as security;
pub use chronus_sim as sim;
pub use chronus_workloads as workloads;
