//! Behavioural contracts of the back-off machinery — in both senses:
//! DRAM-level back-off (§3 vs §7.2: PRAC serves a fixed number of RFMs
//! per back-off; Chronus serves as many as needed and no more) and the
//! grid executor's retry back-off, whose deterministic schedule the
//! `executor_retry_backoff` module below pins down.

use chronus::core::MechanismKind;
use chronus::ctrl::AddressMapping;
use chronus::dram::{BankId, Geometry};
use chronus::sim::{SimConfig, SimReport, System};
use chronus::workloads::wave_attack_trace;

fn attack(mech: MechanismKind, nrh: u32, rows: u32, accesses: usize) -> SimReport {
    let geo = Geometry::ddr5();
    let row_list: Vec<u32> = (0..rows).map(|i| 1000 + i * 16).collect();
    let t = wave_attack_trace(
        AddressMapping::Mop,
        &geo,
        BankId::new(0, 0, 0),
        &row_list,
        accesses,
    );
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = t.instructions() - 16;
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.oracle = true;
    cfg.max_mem_cycles = 60_000_000;
    System::build(&cfg).run(vec![t])
}

#[test]
fn prac4_serves_exactly_four_rfms_per_backoff() {
    let r = attack(MechanismKind::Prac4, 64, 8, 8_000);
    assert!(r.ctrl.back_offs > 0, "attack must trigger back-offs");
    // The run may end mid-recovery, so allow one unfinished period.
    let expect = 4 * r.ctrl.back_offs;
    assert!(
        r.ctrl.recovery_rfms <= expect && r.ctrl.recovery_rfms + 4 > expect,
        "PRAC-4's recovery period is always N_Ref = 4 RFMs ({} vs {})",
        r.ctrl.recovery_rfms,
        expect
    );
}

#[test]
fn prac1_serves_one_rfm_per_backoff() {
    let r = attack(MechanismKind::Prac1, 64, 8, 8_000);
    assert!(r.ctrl.back_offs > 0);
    assert!(
        r.ctrl.back_offs - r.ctrl.recovery_rfms <= 1,
        "{} back-offs vs {} RFMs",
        r.ctrl.back_offs,
        r.ctrl.recovery_rfms
    );
}

#[test]
fn chronus_refresh_count_is_demand_driven() {
    // Two alternating hot rows: Chronus spends about two RFMs per
    // back-off instead of PRAC's fixed four.
    let few = attack(MechanismKind::Chronus, 64, 2, 8_000);
    assert!(few.ctrl.back_offs > 0);
    let per_backoff = few.ctrl.recovery_rfms as f64 / few.ctrl.back_offs as f64;
    assert!(
        per_backoff < 3.0,
        "two hot rows should not need 4 RFMs (got {per_backoff:.2})"
    );
    // Many concurrently hot rows: recoveries must stretch to cover them.
    let many = attack(MechanismKind::Chronus, 64, 8, 12_000);
    assert!(many.ctrl.back_offs > 0);
    let per_backoff_many = many.ctrl.recovery_rfms as f64 / many.ctrl.back_offs as f64;
    assert!(
        per_backoff_many > per_backoff,
        "Chronus must scale refreshes with demand ({per_backoff:.2} vs {per_backoff_many:.2})"
    );
}

#[test]
fn both_policies_keep_the_oracle_clean() {
    for mech in [MechanismKind::Prac4, MechanismKind::Chronus] {
        let r = attack(mech, 64, 8, 10_000);
        assert_eq!(r.oracle_flips, Some(0), "{mech:?} leaked a bitflip");
    }
}

#[test]
fn prac_prfm_uses_both_triggers() {
    let r = attack(MechanismKind::PracPrfm, 64, 8, 8_000);
    // The RFMth = 75 periodic trigger fires long before any counter
    // reaches the back-off threshold under a spread attack.
    assert!(r.ctrl.raa_rfms > 0, "PRFM side must fire");
    assert!(r.dram.rfms >= r.ctrl.raa_rfms + r.ctrl.recovery_rfms);
    assert_eq!(r.oracle_flips, Some(0));
}

#[test]
fn chronus_pb_combines_ccu_with_fixed_recovery() {
    let r = attack(MechanismKind::ChronusPb, 64, 8, 8_000);
    if r.ctrl.back_offs > 0 {
        assert_eq!(
            r.ctrl.recovery_rfms,
            4 * r.ctrl.back_offs,
            "Chronus-PB inherits PRAC's fixed recovery"
        );
    }
    assert_eq!(r.oracle_flips, Some(0));
}

#[test]
fn borrowed_refresh_services_aggressors_during_ref() {
    // Benign-rate hammering below the back-off threshold: periodic REFs
    // should transparently service the tracked aggressors (§5).
    let r = attack(MechanismKind::Prac4, 1024, 4, 20_000);
    assert!(
        r.dram.borrowed_refreshes > 0,
        "borrowed refreshes never fired"
    );
    assert_eq!(r.ctrl.back_offs, 0, "threshold 1017 must not be reached");
}

#[test]
fn mechanisms_stay_secure_at_rowpress_style_thresholds() {
    // §12: RowPress is mitigated by configuring RowHammer defences at
    // sub-500 thresholds. Verify the stack holds at N_RH = 500.
    for mech in [
        MechanismKind::Chronus,
        MechanismKind::Prac4,
        MechanismKind::Graphene,
    ] {
        let r = attack(mech, 500, 16, 12_000);
        assert_eq!(r.oracle_flips, Some(0), "{mech:?} at N_RH=500");
        assert!(r.oracle_max_acts.unwrap() < 500);
    }
}

/// Contracts of the *executor's* retry back-off: the schedule the grid
/// uses when a cell attempt fails. Everything is asserted through the real
/// [`RetryPolicy`] with no clock — the schedule is a pure function of the
/// policy and the retry token.
mod executor_retry_backoff {
    use chronus::grid::retry::RetryPolicy;

    #[test]
    fn default_policy_schedule_is_capped_exponential_within_jitter() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 3);
        for token in [0u64, 17, u64::MAX] {
            for retry in 0..p.max_retries {
                let raw = p.raw_delay_ms(retry) as f64;
                let ms = p.delay_ms(retry, token) as f64;
                assert!(
                    ms >= (raw * (1.0 - p.jitter)).floor() && ms <= (raw * (1.0 + p.jitter)).ceil(),
                    "retry {retry} token {token}: {ms} outside ±{}% of {raw}",
                    p.jitter * 100.0
                );
            }
        }
        // Doubling, capped.
        assert_eq!(p.raw_delay_ms(0), 250);
        assert_eq!(p.raw_delay_ms(1), 500);
        assert_eq!(p.raw_delay_ms(2), 1_000);
        assert_eq!(p.raw_delay_ms(63), p.cap_ms);
    }

    #[test]
    fn schedule_is_deterministic_per_token_and_decorrelated_across_tokens() {
        let p = RetryPolicy::with_retries(6);
        assert_eq!(p.schedule_ms(42), p.schedule_ms(42), "pure in the token");
        assert_ne!(
            p.schedule_ms(42),
            p.schedule_ms(43),
            "different cells must not retry in lockstep"
        );
    }

    #[test]
    fn retry_budget_shapes_the_schedule_length() {
        assert!(RetryPolicy::none().schedule_ms(1).is_empty());
        assert_eq!(RetryPolicy::none().attempts(), 1);
        assert_eq!(RetryPolicy::with_retries(5).schedule_ms(1).len(), 5);
    }
}
