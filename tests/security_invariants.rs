//! Empirical security: run adversarial access patterns against every
//! secure configuration with the ground-truth disturbance oracle attached
//! and verify the §8 criterion — no row is ever activated `N_RH` times
//! before its victims are refreshed.

use chronus::core::MechanismKind;
use chronus::ctrl::AddressMapping;
use chronus::dram::{BankId, Geometry};
use chronus::sim::{SimConfig, SimReport, System};
use chronus::workloads::attack::double_sided_trace;
use chronus::workloads::{perf_attack_trace, wave_attack_trace};

fn attack_run(mech: MechanismKind, nrh: u32, trace: chronus::cpu::Trace) -> SimReport {
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = trace.instructions().saturating_sub(16);
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.oracle = true;
    cfg.max_mem_cycles = 40_000_000;
    System::build(&cfg).run(vec![trace])
}

fn geo() -> Geometry {
    Geometry::ddr5()
}

#[test]
fn baseline_is_vulnerable_to_double_sided_hammer() {
    // Negative control: without mitigation the oracle must observe counts
    // beyond N_RH.
    let nrh = 64;
    let t = double_sided_trace(
        AddressMapping::Mop,
        &geo(),
        BankId::new(0, 0, 0),
        500,
        4_000,
    );
    let r = attack_run(MechanismKind::None, nrh, t);
    assert!(
        r.oracle_max_acts.unwrap() >= nrh,
        "oracle blind: max acts {}",
        r.oracle_max_acts.unwrap()
    );
    assert!(r.oracle_flips.unwrap() > 0);
}

#[test]
fn chronus_bounds_double_sided_hammer() {
    let nrh = 64;
    let t = double_sided_trace(
        AddressMapping::Mop,
        &geo(),
        BankId::new(0, 0, 0),
        500,
        6_000,
    );
    let r = attack_run(MechanismKind::Chronus, nrh, t);
    let max = r.oracle_max_acts.unwrap();
    assert!(max < nrh, "Chronus let a row reach {max} ≥ {nrh}");
    assert_eq!(r.oracle_flips.unwrap(), 0);
    assert!(r.ctrl.back_offs > 0, "the attack must trigger back-offs");
}

#[test]
fn prac4_bounds_double_sided_hammer() {
    let nrh = 64;
    let t = double_sided_trace(
        AddressMapping::Mop,
        &geo(),
        BankId::new(0, 1, 0),
        777,
        6_000,
    );
    let r = attack_run(MechanismKind::Prac4, nrh, t);
    let max = r.oracle_max_acts.unwrap();
    assert!(max < nrh, "PRAC-4 let a row reach {max} ≥ {nrh}");
    assert_eq!(r.oracle_flips.unwrap(), 0);
}

#[test]
fn chronus_survives_the_wave_attack() {
    let nrh = 64;
    // More decoys than the ATT can hold, hammered in balanced rounds.
    let rows: Vec<u32> = (0..32).map(|i| 2000 + i * 8).collect();
    let t = wave_attack_trace(
        AddressMapping::Mop,
        &geo(),
        BankId::new(0, 0, 1),
        &rows,
        12_000,
    );
    let r = attack_run(MechanismKind::Chronus, nrh, t);
    let max = r.oracle_max_acts.unwrap();
    assert!(max < nrh, "wave attack reached {max} ≥ {nrh}");
    assert_eq!(r.oracle_flips.unwrap(), 0);
}

#[test]
fn prac4_survives_the_wave_attack_at_its_secure_threshold() {
    let nrh = 64;
    let rows: Vec<u32> = (0..48).map(|i| 4000 + i * 8).collect();
    let t = wave_attack_trace(
        AddressMapping::Mop,
        &geo(),
        BankId::new(0, 0, 2),
        &rows,
        12_000,
    );
    let r = attack_run(MechanismKind::Prac4, nrh, t);
    let max = r.oracle_max_acts.unwrap();
    assert!(max < nrh, "wave attack reached {max} ≥ {nrh}");
}

#[test]
fn graphene_bounds_the_hammer() {
    let nrh = 64;
    let t = double_sided_trace(
        AddressMapping::Mop,
        &geo(),
        BankId::new(1, 0, 0),
        300,
        6_000,
    );
    let r = attack_run(MechanismKind::Graphene, nrh, t);
    let max = r.oracle_max_acts.unwrap();
    assert!(max < nrh, "Graphene let a row reach {max} ≥ {nrh}");
    assert!(r.dram.vrrs > 0, "Graphene must issue victim refreshes");
}

#[test]
fn hydra_bounds_the_hammer() {
    let nrh = 64;
    let t = double_sided_trace(
        AddressMapping::Mop,
        &geo(),
        BankId::new(1, 2, 0),
        300,
        6_000,
    );
    let r = attack_run(MechanismKind::Hydra, nrh, t);
    let max = r.oracle_max_acts.unwrap();
    assert!(max < nrh, "Hydra let a row reach {max} ≥ {nrh}");
}

#[test]
fn abacus_bounds_the_hammer() {
    let nrh = 64;
    let t = double_sided_trace(
        AddressMapping::AbacusMop,
        &geo(),
        BankId::new(0, 3, 1),
        300,
        6_000,
    );
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = t.instructions() - 16;
    cfg.mechanism = MechanismKind::Abacus;
    cfg.nrh = nrh;
    cfg.oracle = true;
    cfg.max_mem_cycles = 40_000_000;
    let r = System::build(&cfg).run(vec![t]);
    let max = r.oracle_max_acts.unwrap();
    assert!(max < nrh, "ABACuS let a row reach {max} ≥ {nrh}");
}

#[test]
fn perf_attack_cannot_flip_bits_under_chronus() {
    let nrh = 32;
    let t = perf_attack_trace(AddressMapping::Mop, &geo(), 4, 8, 10_000);
    let r = attack_run(MechanismKind::Chronus, nrh, t);
    assert_eq!(r.oracle_flips.unwrap(), 0);
    assert!(r.oracle_max_acts.unwrap() < nrh);
}

#[test]
fn chronus_respects_its_section8_bound() {
    // §8: A(i) ≤ N_BO + A_normal at all times. With N_RH = 64, N_BO = 60
    // and A_normal = 3, the oracle must never see more than 63.
    let nrh = 64;
    let rows: Vec<u32> = (0..8).map(|i| 6000 + i * 16).collect();
    let t = wave_attack_trace(
        AddressMapping::Mop,
        &geo(),
        BankId::new(1, 1, 1),
        &rows,
        12_000,
    );
    let r = attack_run(MechanismKind::Chronus, nrh, t);
    let max = r.oracle_max_acts.unwrap();
    assert!(max <= 63, "bound violated: {max} > N_BO + A_normal");
}
