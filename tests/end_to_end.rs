//! End-to-end integration: every mechanism runs a real mix to completion
//! and the paper's qualitative orderings hold.

use chronus::core::MechanismKind;
use chronus::sim::{SimConfig, SimReport, System};
use chronus::workloads::synthetic_app;

fn traces(n: usize, insts: u64, seed: u64) -> Vec<chronus::cpu::Trace> {
    let names = ["429.mcf", "462.libquantum", "tpch2", "473.astar"];
    (0..n)
        .map(|i| {
            synthetic_app(names[i % names.len()], i as u64)
                .unwrap()
                .generate(insts + insts / 5, seed)
        })
        .collect()
}

fn run(mech: MechanismKind, nrh: u32, insts: u64) -> SimReport {
    let mut cfg = SimConfig::four_core();
    cfg.instructions_per_core = insts;
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.max_mem_cycles = insts * 5000;
    System::build(&cfg).run(traces(4, insts, 5))
}

#[test]
fn every_mechanism_completes_at_every_threshold() {
    for &mech in MechanismKind::all() {
        for nrh in [1024u32, 64, 20] {
            let r = run(mech, nrh, 4_000);
            assert!(
                !r.truncated,
                "{mech} at N_RH={nrh} did not finish (possible livelock)"
            );
            assert!(r.total_instructions() >= 16_000, "{mech} at {nrh}");
            assert!(r.ipc.iter().all(|&i| i > 0.0), "{mech} at {nrh}");
        }
    }
}

#[test]
fn chronus_dominates_prac_at_low_threshold() {
    let insts = 12_000;
    let base = run(MechanismKind::None, 1024, insts);
    let chronus = run(MechanismKind::Chronus, 20, insts);
    let prac = run(MechanismKind::Prac4, 20, insts);
    let ipc = |r: &SimReport| r.ipc.iter().sum::<f64>();
    assert!(
        ipc(&chronus) > ipc(&prac),
        "Chronus {} must beat PRAC-4 {} at N_RH=20",
        ipc(&chronus),
        ipc(&prac)
    );
    // And Chronus stays close to the unprotected baseline.
    assert!(ipc(&chronus) / ipc(&base) > 0.9);
}

#[test]
fn prac_pays_the_timing_tax_even_at_high_threshold() {
    let insts = 12_000;
    let base = run(MechanismKind::None, 1024, insts);
    let prac = run(MechanismKind::Prac4, 1024, insts);
    let ipc = |r: &SimReport| r.ipc.iter().sum::<f64>();
    let overhead = 1.0 - ipc(&prac) / ipc(&base);
    assert!(
        overhead > 0.01,
        "PRAC's Table-1 timing penalty should be visible, got {overhead}"
    );
    // §6 observation 2: the penalty is timing-driven, not back-off-driven.
    assert!(prac.ctrl.back_offs < 10, "unexpected back-off storm");
}

#[test]
fn prfm_costs_grow_as_nrh_shrinks() {
    let insts = 10_000;
    let hi = run(MechanismKind::Prfm, 1024, insts);
    let lo = run(MechanismKind::Prfm, 20, insts);
    assert!(
        lo.dram.rfms > hi.dram.rfms * 2,
        "RFM rate must explode: {} vs {}",
        lo.dram.rfms,
        hi.dram.rfms
    );
    let ipc = |r: &SimReport| r.ipc.iter().sum::<f64>();
    assert!(ipc(&lo) < ipc(&hi));
}

#[test]
fn energy_overhead_ordering_at_high_threshold() {
    let insts = 10_000;
    let base = run(MechanismKind::None, 1024, insts);
    let chronus = run(MechanismKind::Chronus, 1024, insts);
    let prac = run(MechanismKind::Prac4, 1024, insts);
    let e_chronus = chronus.energy_normalized_to(&base);
    let e_prac = prac.energy_normalized_to(&base);
    // Fig. 10: both cost energy; Chronus costs less than PRAC at 1K.
    assert!(e_chronus > 1.0, "CCU energy adder must show: {e_chronus}");
    assert!(e_prac > 1.0);
    assert!(
        e_chronus < e_prac,
        "Chronus {e_chronus} should be cheaper than PRAC {e_prac}"
    );
}

#[test]
fn refresh_debt_is_paid() {
    let r = run(MechanismKind::None, 1024, 10_000);
    // At 3.9 µs per REF per rank, a run of N mem cycles owes about
    // N / 6240 REFs per rank; allow generous slack for postponement.
    let expected = r.mem_cycles / 6240 * 2; // two ranks
    assert!(
        r.dram.refs * 3 >= expected,
        "refresh starvation: {} REFs vs {} due",
        r.dram.refs,
        expected
    );
}

#[test]
fn reports_serialize_to_json() {
    let r = run(MechanismKind::Chronus, 1024, 3_000);
    let json = serde_json::to_string(&r).expect("SimReport is Serialize");
    assert!(json.contains("\"mechanism\""));
}
