//! Timing legality: the controller must never issue a command that
//! violates a DRAM timing constraint, in any timing mode, under benign or
//! adversarial traffic. The device's strict checker panics on violation.

use chronus::core::MechanismKind;
use chronus::ctrl::AddressMapping;
use chronus::dram::Geometry;
use chronus::sim::{SimConfig, System};
use chronus::workloads::{perf_attack_trace, synthetic_app};

fn strict_cfg(mech: MechanismKind, nrh: u32) -> SimConfig {
    let mut cfg = SimConfig::four_core();
    cfg.instructions_per_core = 5_000;
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.strict_timing = true;
    cfg.max_mem_cycles = 20_000_000;
    cfg
}

fn benign_traces(n: usize) -> Vec<chronus::cpu::Trace> {
    let names = ["429.mcf", "470.lbm", "ycsb-a", "511.povray"];
    (0..n)
        .map(|i| {
            synthetic_app(names[i % names.len()], i as u64)
                .unwrap()
                .generate(6_500, 99)
        })
        .collect()
}

#[test]
fn baseline_timing_is_clean() {
    let cfg = strict_cfg(MechanismKind::None, 1024);
    let r = System::build(&cfg).run(benign_traces(4));
    assert!(!r.truncated);
}

#[test]
fn prac_timing_mode_is_clean() {
    let cfg = strict_cfg(MechanismKind::Prac4, 64);
    let r = System::build(&cfg).run(benign_traces(4));
    assert!(!r.truncated);
}

#[test]
fn buggy_prac_timing_mode_is_clean() {
    let mut cfg = strict_cfg(MechanismKind::Prac4, 64);
    cfg.timing_override = Some(chronus::dram::TimingMode::PracBuggy);
    let r = System::build(&cfg).run(benign_traces(4));
    assert!(!r.truncated);
}

#[test]
fn chronus_backoff_recovery_is_timing_clean_under_attack() {
    let mut cfg = strict_cfg(MechanismKind::Chronus, 20);
    cfg.num_cores = 1;
    cfg.instructions_per_core = 8_000;
    let t = perf_attack_trace(AddressMapping::Mop, &Geometry::ddr5(), 4, 8, 9_000);
    let r = System::build(&cfg).run(vec![t]);
    assert!(!r.truncated);
    assert!(r.ctrl.back_offs > 0, "attack should trigger recoveries");
}

#[test]
fn prfm_rfm_storm_is_timing_clean() {
    let mut cfg = strict_cfg(MechanismKind::Prfm, 20);
    cfg.num_cores = 1;
    cfg.instructions_per_core = 8_000;
    let t = perf_attack_trace(AddressMapping::Mop, &Geometry::ddr5(), 4, 8, 9_000);
    let r = System::build(&cfg).run(vec![t]);
    assert!(!r.truncated);
    assert!(r.dram.rfms > 0);
}

#[test]
fn para_vrr_storm_is_timing_clean() {
    let mut cfg = strict_cfg(MechanismKind::Para, 32);
    cfg.num_cores = 1;
    cfg.instructions_per_core = 8_000;
    let t = perf_attack_trace(AddressMapping::Mop, &Geometry::ddr5(), 4, 8, 9_000);
    let r = System::build(&cfg).run(vec![t]);
    assert!(!r.truncated);
    assert!(r.dram.vrrs > 0, "PARA at N_RH=32 refreshes aggressively");
}
