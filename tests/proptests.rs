//! Cross-crate property tests.

use chronus::core::{decrement, Att, MisraGries};
use chronus::ctrl::AddressMapping;
use chronus::dram::{geometry::victims_of, Geometry};
use chronus::security::wave::{discrete, prfm_wave_max_acts, WaveTiming};
use chronus::workloads::generator::synthetic_from_profile;
use chronus::workloads::AppProfile;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapping_roundtrips_everywhere(phys in 0u64..(32u64 << 30), which in 0usize..3) {
        let geo = Geometry::ddr5();
        let m = [AddressMapping::Mop, AddressMapping::RoBaRaCoCh, AddressMapping::AbacusMop][which];
        let a = m.decode(phys, &geo);
        prop_assert_eq!(m.encode(&a, &geo), phys & !63);
        prop_assert!((a.row as usize) < geo.rows);
        prop_assert!((a.col as usize) < geo.cols);
        prop_assert!((a.bank.rank as usize) < geo.ranks);
    }

    #[test]
    fn decrementer_equals_wrapping_sub(x: u8) {
        prop_assert_eq!(decrement(x), x.wrapping_sub(1));
    }

    #[test]
    fn victims_are_symmetric_and_within_blast(row in 0u32..65_536, blast in 1u32..4) {
        let v = victims_of(row, blast, 65_536);
        prop_assert!(v.len() <= 2 * blast as usize);
        for x in &v {
            let d = x.abs_diff(row);
            prop_assert!(d >= 1 && d <= blast);
        }
        // Interior rows have the full set.
        if row >= blast && row + blast < 65_536 {
            prop_assert_eq!(v.len(), 2 * blast as usize);
        }
    }

    #[test]
    fn att_tracks_the_maximum_count(
        ops in prop::collection::vec((0u32..16, 1u32..1000), 1..200)
    ) {
        // Feed (row, count) observations where counts only grow per row;
        // the ATT max must match the true running maximum.
        let mut att = Att::new(4);
        let mut true_counts = std::collections::HashMap::new();
        for (row, inc) in ops {
            let c = true_counts.entry(row).or_insert(0u32);
            *c += inc;
            att.observe(row, *c);
        }
        let (max_row, max_count) = true_counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(r, c)| (*r, *c))
            .unwrap();
        let (att_row, att_count) = att.peek_max().unwrap();
        prop_assert_eq!(att_count, max_count);
        // Ties may resolve to another row with the same count.
        prop_assert!(true_counts[&att_row] == max_count || att_row == max_row);
    }

    #[test]
    fn misra_gries_never_undercounts_beyond_spillover(
        rows in prop::collection::vec(0u32..64, 1..2000)
    ) {
        let mut mg = MisraGries::new(8);
        let mut true_counts = std::collections::HashMap::new();
        for &r in &rows {
            mg.observe(r);
            *true_counts.entry(r).or_insert(0u32) += 1;
        }
        for (&row, &true_count) in &true_counts {
            let est = mg.estimate(row).unwrap_or(0);
            prop_assert!(
                est + mg.spillover() >= true_count,
                "row {} est {} spill {} true {}",
                row, est, mg.spillover(), true_count
            );
        }
    }

    #[test]
    fn prfm_recurrence_tracks_discrete_attack(th in 2u32..40, r1 in 8u64..400) {
        let t = WaveTiming::baseline_default();
        let rec = prfm_wave_max_acts(th, r1, &t);
        let sim = discrete::prfm_attack(th, r1 as usize, &t);
        let hi = rec.max(sim);
        prop_assert!(rec.abs_diff(sim) <= hi / 3 + 3,
            "th={} r1={}: recurrence {} vs discrete {}", th, r1, rec, sim);
    }

    #[test]
    fn trace_generator_hits_target_mpki(mpki in 1.0f64..50.0, seed: u64) {
        let profile = AppProfile {
            name: "prop",
            mpki,
            locality: 0.5,
            read_ratio: 0.7,
            footprint: 32 << 20,
        };
        let t = synthetic_from_profile(profile, 0).generate(150_000, seed);
        let got = t.mpki();
        prop_assert!((got - mpki).abs() / mpki < 0.25,
            "target {} got {}", mpki, got);
    }

    #[test]
    fn trace_text_roundtrip(seed: u64) {
        let profile = AppProfile {
            name: "roundtrip",
            mpki: 10.0,
            locality: 0.3,
            read_ratio: 0.6,
            footprint: 16 << 20,
        };
        let t = synthetic_from_profile(profile, 1).generate(5_000, seed);
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        let back = chronus::cpu::Trace::read_text(&buf[..]).unwrap();
        prop_assert_eq!(back, t);
    }
}
