//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline). Supports the shapes this workspace actually uses:
//! non-generic structs with named fields, unit structs, and enums whose
//! variants are unit, tuple, or struct-like. Generated JSON follows
//! serde_json's default representation (`"Variant"`,
//! `{"Variant": value}`, `{"Variant": {…}}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Generates a JSON `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("w.obj_begin();\n");
            for f in fields {
                s.push_str(&format!(
                    "w.obj_key(\"{f}\");\nserde::Serialize::json_write(&self.{f}, w);\n"
                ));
            }
            s.push_str("w.obj_end();\n");
            s
        }
        Shape::UnitStruct => "w.raw(\"null\".to_string());\n".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let ty = &p.name;
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        s.push_str(&format!("{ty}::{vn} => {{ w.string(\"{vn}\"); }}\n"));
                    }
                    VariantKind::Tuple(1) => {
                        s.push_str(&format!(
                            "{ty}::{vn}(f0) => {{ w.obj_begin(); w.obj_key(\"{vn}\"); \
                             serde::Serialize::json_write(f0, w); w.obj_end(); }}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut arm = format!(
                            "{ty}::{vn}({}) => {{ w.obj_begin(); w.obj_key(\"{vn}\"); w.arr_begin();\n",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!(
                                "w.arr_elem(); serde::Serialize::json_write({b}, w);\n"
                            ));
                        }
                        arm.push_str("w.arr_end(); w.obj_end(); }\n");
                        s.push_str(&arm);
                    }
                    VariantKind::Named(fields) => {
                        let mut arm = format!(
                            "{ty}::{vn} {{ {} }} => {{ w.obj_begin(); w.obj_key(\"{vn}\"); w.obj_begin();\n",
                            fields.join(", ")
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "w.obj_key(\"{f}\"); serde::Serialize::json_write({f}, w);\n"
                            ));
                        }
                        arm.push_str("w.obj_end(); w.obj_end(); }\n");
                        s.push_str(&arm);
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    let out = format!(
        "impl serde::Serialize for {} {{\n\
         fn json_write(&self, w: &mut serde::JsonWriter) {{\n{}\n}}\n}}\n",
        p.name, body
    );
    out.parse()
        .expect("derive(Serialize): generated code must parse")
}

/// Generates a JSON `Deserialize` impl (the inverse of the `Serialize`
/// derive: same field names, same enum representation).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let ty = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let mut s = format!("v.expect_obj(\"{ty}\")?;\nOk({ty} {{\n");
            for f in fields {
                s.push_str(&format!(
                    "{f}: serde::Deserialize::from_json(v.require(\"{ty}\", \"{f}\")?)\
                     .map_err(|e| e.at(\"{ty}.{f}\"))?,\n"
                ));
            }
            s.push_str("})\n");
            s
        }
        Shape::UnitStruct => format!(
            "match v {{\n\
             serde::JsonValue::Null => Ok({ty}),\n\
             other => Err(serde::DeError::new(format!(\n\
             \"expected null for {ty}, found {{}}\", other.kind()))),\n\
             }}\n"
        ),
        Shape::Enum(variants) => {
            let mut s = String::from("if let Some(s) = v.as_str() {\nreturn match s {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    s.push_str(&format!("\"{vn}\" => Ok({ty}::{vn}),\n"));
                }
            }
            s.push_str(&format!(
                "other => Err(serde::DeError::new(format!(\n\
                 \"unknown {ty} variant '{{other}}'\"))),\n}};\n}}\n"
            ));
            let payload: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            if payload.is_empty() {
                s.push_str(&format!(
                    "Err(serde::DeError::new(format!(\n\
                     \"expected string for {ty}, found {{}}\", v.kind())))\n"
                ));
            } else {
                s.push_str(&format!(
                    "let (tag, inner) = v.expect_variant(\"{ty}\")?;\nmatch tag {{\n"
                ));
                for v in payload {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unreachable!("filtered above"),
                        VariantKind::Tuple(1) => {
                            s.push_str(&format!(
                                "\"{vn}\" => Ok({ty}::{vn}(\
                                 serde::Deserialize::from_json(inner)\
                                 .map_err(|e| e.at(\"{ty}::{vn}\"))?)),\n"
                            ));
                        }
                        VariantKind::Tuple(n) => {
                            let mut arm = format!(
                                "\"{vn}\" => {{\n\
                                 let elems = inner.expect_arr(\"{ty}::{vn}\")?;\n\
                                 if elems.len() != {n} {{\n\
                                 return Err(serde::DeError::new(format!(\n\
                                 \"{ty}::{vn}: expected {n} elements, found {{}}\", elems.len())));\n\
                                 }}\n\
                                 Ok({ty}::{vn}(\n"
                            );
                            for i in 0..*n {
                                arm.push_str(&format!(
                                    "serde::Deserialize::from_json(&elems[{i}])\
                                     .map_err(|e| e.at(\"{ty}::{vn}[{i}]\"))?,\n"
                                ));
                            }
                            arm.push_str("))\n}\n");
                            s.push_str(&arm);
                        }
                        VariantKind::Named(fields) => {
                            let mut arm = format!("\"{vn}\" => Ok({ty}::{vn} {{\n");
                            for f in fields {
                                arm.push_str(&format!(
                                    "{f}: serde::Deserialize::from_json(\
                                     inner.require(\"{ty}::{vn}\", \"{f}\")?)\
                                     .map_err(|e| e.at(\"{ty}::{vn}.{f}\"))?,\n"
                                ));
                            }
                            arm.push_str("}),\n");
                            s.push_str(&arm);
                        }
                    }
                }
                s.push_str(&format!(
                    "other => Err(serde::DeError::new(format!(\n\
                     \"unknown {ty} variant '{{other}}'\"))),\n}}\n"
                ));
            }
            s
        }
    };
    let out = format!(
        "impl serde::Deserialize for {ty} {{\n\
         fn from_json(v: &serde::JsonValue) -> Result<Self, serde::DeError> {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("derive(Deserialize): generated code must parse")
}

fn parse(input: TokenStream) -> Parsed {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    let kw = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _bracket = toks.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    // Optional pub(crate)/pub(super) restriction group.
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    break s;
                }
            }
            other => panic!("derive: unexpected token {other:?}"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("derive(Serialize): generic type {name} not supported by the offline stub");
        }
    }
    let shape = if kw == "struct" {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("derive(Serialize): tuple struct {name} not supported by the offline stub")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("derive: unexpected struct body {other:?}"),
        }
    } else {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: unexpected enum body {other:?}"),
        }
    };
    Parsed { name, shape }
}

/// Field names from `a: T, pub b: U, …` (attributes allowed).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _bracket = toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("derive: unexpected field token {other:?}"),
            }
        };
        fields.push(name);
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive: expected ':' after field, got {other:?}"),
        }
        // Consume the type: everything until a top-level comma. `<`/`>` in
        // type position never nest via token trees, so track angle depth.
        let mut angle: i32 = 0;
        loop {
            match toks.peek() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    toks.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle -= 1;
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        let name = loop {
            match toks.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _bracket = toks.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => panic!("derive: unexpected variant token {other:?}"),
            }
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
    }
}

/// Number of fields in a tuple-variant body (top-level commas + 1; 0 for
/// an empty body).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    if toks.peek().is_none() {
        return 0;
    }
    let mut n = 1;
    let mut angle: i32 = 0;
    let mut trailing_comma = false;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                n += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        n -= 1;
    }
    n
}
