//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal serialization facade with the same surface the codebase uses:
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::to_string_pretty`.
//! Instead of serde's full data model, [`Serialize`] writes JSON directly
//! through a [`json::JsonWriter`]; the derive macros (re-exported from
//! `serde_derive`) generate field-wise writers for plain structs and enums,
//! which covers every type this repository serializes.

pub mod json;

pub use json::JsonWriter;
pub use serde_derive::{Deserialize, Serialize};

/// A value that can write itself as JSON.
pub trait Serialize {
    /// Appends `self` to `w` as one JSON value.
    fn json_write(&self, w: &mut JsonWriter);
}

/// Marker trait kept so `#[derive(Deserialize)]` in downstream code keeps
/// compiling; no deserialization is performed anywhere in the workspace.
pub trait Deserialize {}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, w: &mut JsonWriter) {
                w.raw(itoa_like(*self as i128));
            }
        }
    )*};
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, w: &mut JsonWriter) {
                w.raw(utoa_like(*self as u128));
            }
        }
    )*};
}

fn itoa_like(v: i128) -> String {
    v.to_string()
}

fn utoa_like(v: u128) -> String {
    v.to_string()
}

impl_int!(i8, i16, i32, i64, isize);
impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn json_write(&self, w: &mut JsonWriter) {
        w.raw(if *self { "true".into() } else { "false".into() });
    }
}

impl Serialize for f64 {
    fn json_write(&self, w: &mut JsonWriter) {
        if self.is_finite() {
            let mut s = format!("{self}");
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            w.raw(s);
        } else {
            // JSON has no NaN/Inf; serde_json emits null for them too.
            w.raw("null".into());
        }
    }
}

impl Serialize for f32 {
    fn json_write(&self, w: &mut JsonWriter) {
        (*self as f64).json_write(w);
    }
}

impl Serialize for str {
    fn json_write(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for String {
    fn json_write(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for char {
    fn json_write(&self, w: &mut JsonWriter) {
        w.string(&self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, w: &mut JsonWriter) {
        (**self).json_write(w);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json_write(&self, w: &mut JsonWriter) {
        (**self).json_write(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, w: &mut JsonWriter) {
        match self {
            None => w.raw("null".into()),
            Some(v) => v.json_write(w),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, w: &mut JsonWriter) {
        w.arr_begin();
        for v in self {
            w.arr_elem();
            v.json_write(w);
        }
        w.arr_end();
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, w: &mut JsonWriter) {
        self.as_slice().json_write(w);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, w: &mut JsonWriter) {
        self.as_slice().json_write(w);
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn json_write(&self, w: &mut JsonWriter) {
                w.arr_begin();
                $( w.arr_elem(); self.$n.json_write(w); )+
                w.arr_end();
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut w = JsonWriter::new(false);
        v.json_write(&mut w);
        w.finish()
    }

    #[test]
    fn primitives() {
        assert_eq!(to_json(&42u64), "42");
        assert_eq!(to_json(&-7i32), "-7");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&1.0f64), "1.0");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Some(5u8)), "5");
        assert_eq!(to_json(&Option::<u8>::None), "null");
        assert_eq!(to_json(&(1u8, "x")), "[1,\"x\"]");
        assert_eq!(to_json(&[1u64, 2]), "[1,2]");
    }
}
