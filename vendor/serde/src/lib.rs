//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal serialization facade with the same surface the codebase uses:
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::to_string_pretty`
//! and `serde_json::from_str`. Instead of serde's full data model,
//! [`Serialize`] writes JSON directly through a [`json::JsonWriter`] and
//! [`Deserialize`] reads fields out of a parsed [`value::JsonValue`] tree;
//! the derive macros (re-exported from `serde_derive`) generate field-wise
//! writers and readers for plain structs and enums, which covers every type
//! this repository serializes.

pub mod json;
pub mod value;

pub use json::JsonWriter;
pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, JsonValue};

/// A value that can write itself as JSON.
pub trait Serialize {
    /// Appends `self` to `w` as one JSON value.
    fn json_write(&self, w: &mut JsonWriter);
}

/// A value that can reconstruct itself from a parsed JSON tree.
///
/// The inverse of [`Serialize`]: `T::from_json(&parse(to_json(&t)))`
/// yields a value equal to `t` for every shape the derive supports.
pub trait Deserialize: Sized {
    /// Reads one value out of `v`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first shape or type mismatch.
    fn from_json(v: &JsonValue) -> Result<Self, DeError>;
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &JsonValue) -> Result<Self, DeError> {
                match v {
                    JsonValue::Num(tok) => tok.parse::<$t>().map_err(|e| {
                        DeError::new(format!(
                            "invalid {}: '{tok}' ({e})", stringify!($t)
                        ))
                    }),
                    other => Err(DeError::new(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for bool {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f64 {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Num(tok) => tok
                .parse::<f64>()
                .map_err(|e| DeError::new(format!("invalid f64: '{tok}' ({e})"))),
            // The writer emits null for non-finite floats.
            JsonValue::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!(
                "expected f64, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        f64::from_json(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for char {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        let s = String::from_json(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected single-char string: '{s}'"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        let elems = v.expect_arr("Vec")?;
        let mut out = Vec::with_capacity(elems.len());
        for (i, e) in elems.iter().enumerate() {
            out.push(T::from_json(e).map_err(|err| err.at(&format!("[{i}]")))?);
        }
        Ok(out)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        let vec = Vec::<T>::from_json(v)?;
        let n = vec.len();
        vec.try_into()
            .map_err(|_| DeError::new(format!("expected array of {N} elements, found {n}")))
    }
}

macro_rules! impl_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &JsonValue) -> Result<Self, DeError> {
                let elems = v.expect_arr("tuple")?;
                let len = 0 $(+ { let _ = stringify!($t); 1 })+;
                if elems.len() != len {
                    return Err(DeError::new(format!(
                        "expected tuple of {len} elements, found {}", elems.len()
                    )));
                }
                Ok(($($t::from_json(&elems[$n]).map_err(|e| e.at(&format!("[{}]", $n)))?,)+))
            }
        }
    )*};
}

impl_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, w: &mut JsonWriter) {
                w.raw(itoa_like(*self as i128));
            }
        }
    )*};
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, w: &mut JsonWriter) {
                w.raw(utoa_like(*self as u128));
            }
        }
    )*};
}

fn itoa_like(v: i128) -> String {
    v.to_string()
}

fn utoa_like(v: u128) -> String {
    v.to_string()
}

impl_int!(i8, i16, i32, i64, isize);
impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn json_write(&self, w: &mut JsonWriter) {
        w.raw(if *self { "true".into() } else { "false".into() });
    }
}

impl Serialize for f64 {
    fn json_write(&self, w: &mut JsonWriter) {
        if self.is_finite() {
            let mut s = format!("{self}");
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            w.raw(s);
        } else {
            // JSON has no NaN/Inf; serde_json emits null for them too.
            w.raw("null".into());
        }
    }
}

impl Serialize for f32 {
    fn json_write(&self, w: &mut JsonWriter) {
        (*self as f64).json_write(w);
    }
}

impl Serialize for str {
    fn json_write(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for String {
    fn json_write(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for char {
    fn json_write(&self, w: &mut JsonWriter) {
        w.string(&self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, w: &mut JsonWriter) {
        (**self).json_write(w);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json_write(&self, w: &mut JsonWriter) {
        (**self).json_write(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, w: &mut JsonWriter) {
        match self {
            None => w.raw("null".into()),
            Some(v) => v.json_write(w),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, w: &mut JsonWriter) {
        w.arr_begin();
        for v in self {
            w.arr_elem();
            v.json_write(w);
        }
        w.arr_end();
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, w: &mut JsonWriter) {
        self.as_slice().json_write(w);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, w: &mut JsonWriter) {
        self.as_slice().json_write(w);
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn json_write(&self, w: &mut JsonWriter) {
                w.arr_begin();
                $( w.arr_elem(); self.$n.json_write(w); )+
                w.arr_end();
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut w = JsonWriter::new(false);
        v.json_write(&mut w);
        w.finish()
    }

    #[test]
    fn primitives() {
        assert_eq!(to_json(&42u64), "42");
        assert_eq!(to_json(&-7i32), "-7");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&1.0f64), "1.0");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Some(5u8)), "5");
        assert_eq!(to_json(&Option::<u8>::None), "null");
        assert_eq!(to_json(&(1u8, "x")), "[1,\"x\"]");
        assert_eq!(to_json(&[1u64, 2]), "[1,2]");
    }
}
