//! A parsed JSON tree and a recursive-descent parser for it.
//!
//! [`JsonValue`] is the input side of the vendored serde stand-in: the
//! derive-generated [`crate::Deserialize`] impls read their fields out of a
//! parsed tree. Number tokens keep their source text ([`JsonValue::Num`])
//! so integers up to the full `u64`/`i64` range survive a round trip
//! without detouring through `f64`.

use std::fmt;

/// Deserialization error with a breadcrumb of where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A fresh error.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Prefixes location context (`"SimReport.ipc: ..."`).
    #[must_use]
    pub fn at(self, ctx: &str) -> Self {
        Self {
            msg: format!("{ctx}: {}", self.msg),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source token so integer precision is exact.
    Num(String),
    /// A string (escapes already resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

/// Shared `null` for absent object members.
pub static NULL: JsonValue = JsonValue::Null;

impl JsonValue {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<JsonValue, DeError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(DeError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    /// Member lookup; `&NULL` when absent or when `self` is not an object.
    pub fn field(&self, key: &str) -> &JsonValue {
        if let JsonValue::Obj(members) = self {
            for (k, v) in members {
                if k == key {
                    return v;
                }
            }
        }
        &NULL
    }

    /// Member lookup that errors when the key is absent — the derive uses
    /// this so a document from an older schema (missing fields) fails to
    /// parse instead of silently defaulting `Option`/`f64` fields; a
    /// corrupt or stale cache entry must re-simulate, not serve NaNs.
    pub fn require(&self, what: &str, key: &str) -> Result<&JsonValue, DeError> {
        let members = self.expect_obj(what)?;
        for (k, v) in members {
            if k == key {
                return Ok(v);
            }
        }
        Err(DeError::new(format!("missing field {what}.{key}")))
    }

    /// The object members, or an error naming the expected type.
    pub fn expect_obj(&self, what: &str) -> Result<&[(String, JsonValue)], DeError> {
        match self {
            JsonValue::Obj(m) => Ok(m),
            other => Err(DeError::new(format!(
                "expected object for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// The array elements, or an error naming the expected type.
    pub fn expect_arr(&self, what: &str) -> Result<&[JsonValue], DeError> {
        match self {
            JsonValue::Arr(v) => Ok(v),
            other => Err(DeError::new(format!(
                "expected array for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// The single `{"Variant": payload}` member of an enum object.
    pub fn expect_variant(&self, what: &str) -> Result<(&str, &JsonValue), DeError> {
        let members = self.expect_obj(what)?;
        if members.len() != 1 {
            return Err(DeError::new(format!(
                "expected single-variant object for {what}, found {} members",
                members.len()
            )));
        }
        Ok((&members[0].0, &members[0].1))
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> DeError {
        DeError::new(format!("{msg} at byte {}", self.pos))
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, DeError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character '{}'", other as char))),
        }
    }

    fn array(&mut self) -> Result<JsonValue, DeError> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, DeError> {
        self.expect_byte(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` only ever advances past ASCII or whole chars, so
                    // it is always a char boundary of the source &str.
                    let c = self.text[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(JsonValue::Num(token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse(" -12.5e3 ").unwrap(),
            JsonValue::Num("-12.5e3".into())
        );
        assert_eq!(
            JsonValue::parse(r#""a\"\nAb""#).unwrap(),
            JsonValue::Str("a\"\nAb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.field("a").expect_arr("a").unwrap().len(), 2);
        assert_eq!(v.field("b").field("c"), &JsonValue::Null);
        assert_eq!(v.field("missing"), &JsonValue::Null);
    }

    #[test]
    fn big_integers_keep_precision() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v, JsonValue::Num("18446744073709551615".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }
}
