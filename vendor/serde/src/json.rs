//! Structured JSON text emission with optional pretty-printing.

/// An append-only JSON writer. Callers must emit structurally valid
/// sequences (`obj_begin`, `obj_key`, value, …); the writer only handles
/// separators, indentation and string escaping.
pub struct JsonWriter {
    out: String,
    pretty: bool,
    /// One entry per open object/array: whether the next child is first.
    first: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer; `pretty` enables two-space indentation.
    pub fn new(pretty: bool) -> Self {
        Self {
            out: String::new(),
            pretty,
            first: Vec::new(),
        }
    }

    /// Consumes the writer and returns the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.first.len() {
                self.out.push_str("  ");
            }
        }
    }

    fn child_sep(&mut self) {
        if let Some(first) = self.first.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
            self.newline_indent();
        }
    }

    /// Opens an object value.
    pub fn obj_begin(&mut self) {
        self.out.push('{');
        self.first.push(true);
    }

    /// Emits the separator and `"key": ` for the next member.
    pub fn obj_key(&mut self, key: &str) {
        self.child_sep();
        self.escape_into(key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Closes the current object.
    pub fn obj_end(&mut self) {
        let had_children = !self.first.pop().unwrap_or(true);
        if had_children {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens an array value.
    pub fn arr_begin(&mut self) {
        self.out.push('[');
        self.first.push(true);
    }

    /// Emits the separator before the next array element.
    pub fn arr_elem(&mut self) {
        self.child_sep();
    }

    /// Closes the current array.
    pub fn arr_end(&mut self) {
        let had_children = !self.first.pop().unwrap_or(true);
        if had_children {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Writes an escaped JSON string value.
    pub fn string(&mut self, s: &str) {
        self.escape_into(s);
    }

    /// Writes pre-rendered token text (numbers, `true`, `null`, …).
    pub fn raw(&mut self, token: String) {
        self.out.push_str(&token);
    }

    fn escape_into(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let mut w = JsonWriter::new(false);
        w.obj_begin();
        w.obj_key("a");
        w.raw("1".into());
        w.obj_key("b");
        w.string("x");
        w.obj_end();
        assert_eq!(w.finish(), r#"{"a":1,"b":"x"}"#);
    }

    #[test]
    fn pretty_object() {
        let mut w = JsonWriter::new(true);
        w.obj_begin();
        w.obj_key("a");
        w.arr_begin();
        w.arr_elem();
        w.raw("1".into());
        w.arr_elem();
        w.raw("2".into());
        w.arr_end();
        w.obj_end();
        assert_eq!(w.finish(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_flat() {
        let mut w = JsonWriter::new(true);
        w.obj_begin();
        w.obj_end();
        assert_eq!(w.finish(), "{}");
    }
}
