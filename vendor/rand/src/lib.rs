//! Offline stand-in for the `rand` crate (0.8-style call surface).
//!
//! Provides the exact API this workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` and `seq::SliceRandom::{choose,
//! shuffle}` — backed by xoshiro256++ seeded through splitmix64. Streams
//! are deterministic per seed but do NOT match upstream `StdRng` (ChaCha12);
//! everything in this repository only relies on seed-reproducibility.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic seeded generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub mod seq;

pub use rngs::StdRng;

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Sampling a uniformly distributed value of a type.
pub trait Standard: Sized {
    /// One uniform sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// One uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling helpers (auto-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform sample of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(5u64..10);
            assert!((5..10).contains(&x));
            let y = r.gen_range(1i64..=3);
            assert!((1..=3).contains(&y));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
