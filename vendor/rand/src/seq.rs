//! Slice sampling helpers (`rand::seq`).

use crate::RngCore;

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not stay in order");
    }
}
