//! Offline stand-in for the `criterion` crate.
//!
//! Implements the call surface of this workspace's benches —
//! `bench_function`, `benchmark_group`/`sample_size`/`finish`,
//! `Bencher::{iter, iter_batched}`, `criterion_group!`/`criterion_main!` —
//! with a simple calibrated wall-clock loop instead of criterion's
//! statistical machinery. Each benchmark prints a single
//! `name ... <time>/iter` line.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored; kept for
/// signature compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks (prefixes each name).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint (ignored by the stub's time-bounded runner).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Measures one closure.
#[derive(Debug, Default)]
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f` over a time-bounded number of iterations.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate with one iteration, then run until TARGET elapses.
        let start = Instant::now();
        std::hint::black_box(f());
        let mut iters = 1u64;
        while start.elapsed() < TARGET && iters < 100_000_000 {
            std::hint::black_box(f());
            iters += 1;
        }
        self.measured = Some((start.elapsed(), iters));
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while spent < TARGET && iters < 100_000_000 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.measured = Some((spent, iters));
    }

    fn report(&self, name: &str) {
        match self.measured {
            Some((elapsed, iters)) if iters > 0 => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench {name:<50} {ns:>14.1} ns/iter ({iters} iters)");
            }
            _ => println!("bench {name:<50} (no measurement)"),
        }
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
