//! Offline stand-in for `serde_json`: renders any vendored-`serde`
//! `Serialize` value to JSON text. Only the output half is implemented —
//! nothing in this workspace parses JSON back.

use serde::{JsonWriter, Serialize};

/// Serialization error. The vendored writer is infallible, so this type
/// exists purely for signature compatibility.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON text for `value`.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new(false);
    value.json_write(&mut w);
    Ok(w.finish())
}

/// Pretty-printed (two-space indented) JSON text for `value`.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new(true);
    value.json_write(&mut w);
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_pretty() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
    }
}
