//! Offline stand-in for `serde_json`: renders any vendored-`serde`
//! `Serialize` value to JSON text and parses text back through the
//! vendored `Deserialize` trait ([`from_str`]).

use serde::{Deserialize, JsonValue, JsonWriter, Serialize};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Compact JSON text for `value`.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new(false);
    value.json_write(&mut w);
    Ok(w.finish())
}

/// Pretty-printed (two-space indented) JSON text for `value`.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new(true);
    value.json_write(&mut w);
    Ok(w.finish())
}

/// Parses a JSON document into any `Deserialize` type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape/type mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = JsonValue::parse(text)?;
    Ok(T::from_json(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_pretty() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
    }

    #[test]
    fn from_str_roundtrips_containers() {
        let v: Vec<u64> = from_str("[1, 18446744073709551615]").unwrap();
        assert_eq!(v, vec![1, u64::MAX]);
        let o: Option<f64> = from_str("null").unwrap();
        assert_eq!(o, None);
        let t: (u8, String) = from_str(r#"[3, "x"]"#).unwrap();
        assert_eq!(t, (3, "x".to_string()));
    }

    #[test]
    fn from_str_reports_errors() {
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
        assert!(from_str::<u8>("300").is_err());
    }
}
