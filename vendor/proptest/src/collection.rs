//! Collection strategies (`prop::collection`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// A `Vec` strategy: element strategy plus a length range.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "collection::vec: empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}
