//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), range and
//! tuple strategies, `prop::collection::vec`, `any`-style typed parameters
//! (`x: u8`), and `prop_assert!`/`prop_assert_eq!`. Cases are sampled from
//! a fixed-seed RNG; there is no shrinking — a failing case panics with
//! the regular assertion message.

use std::ops::{Range, RangeInclusive};

use rand::{RngCore, SeedableRng, StdRng};

pub mod collection;

/// Test-case generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// The fixed-seed generator used by the `proptest!` runner.
    pub fn deterministic() -> Self {
        Self(StdRng::seed_from_u64(0x5EED_CAFE_F00D_0001))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// One sampled value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types usable as bare typed parameters (`x: u8`) in `proptest!`.
pub trait Arbitrary: Sized {
    /// One uniform sample.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

/// The property-test runner macro.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( #[test] fn $name:ident($($params:tt)*) $body:block )*
    ) => {
        $crate::proptest! { @with_cfg ($cfg) $( #[test] fn $name($($params)*) $body )* }
    };
    (
        $( #[test] fn $name:ident($($params:tt)*) $body:block )*
    ) => {
        $crate::proptest! { @with_cfg ($crate::ProptestConfig::default())
            $( #[test] fn $name($($params)*) $body )* }
    };
    (@with_cfg ($cfg:expr) $( #[test] fn $name:ident($($params:tt)*) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng = $crate::TestRng::deterministic();
                for __proptest_case in 0..cfg.cases {
                    let _ = __proptest_case;
                    $crate::__bind_params! { __proptest_rng; $($params)*; $body }
                }
            }
        )*
    };
}

/// Internal: binds one test's parameter list, then runs the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __bind_params {
    ($rng:ident; ; $body:block) => { $body };
    ($rng:ident; $name:ident in $strat:expr; $body:block) => {{
        let $name = $crate::Strategy::sample(&$strat, &mut $rng);
        $body
    }};
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {{
        let $name = $crate::Strategy::sample(&$strat, &mut $rng);
        $crate::__bind_params! { $rng; $($rest)* }
    }};
    ($rng:ident; $name:ident: $ty:ty; $body:block) => {{
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $body
    }};
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {{
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__bind_params! { $rng; $($rest)* }
    }};
}

/// `prop_assert!`: plain assertion (no shrinking in the offline stub).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!`: plain inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_bind(x in 0u32..10, y in 1u64..=4) {
            prop_assert!(x < 10);
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn typed_params_bind(x: u8) {
            let wrapped = x.wrapping_add(1);
            prop_assert_eq!(wrapped, x.wrapping_add(1));
        }

        #[test]
        fn vec_of_tuples(v in prop::collection::vec((0u32..4, 0u32..4), 1..20) ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 4);
            }
        }
    }
}
