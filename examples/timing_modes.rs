//! Isolates the cost of PRAC's Table 1 timing changes: the same
//! memory-intensive workload under baseline DDR5, fixed PRAC, and the
//! pre-erratum ("buggy") PRAC timings of Appendix E.
//!
//! ```sh
//! cargo run --release --example timing_modes -- 505.mcf
//! ```

use chronus::core::MechanismKind;
use chronus::dram::TimingMode;
use chronus::sim::{SimConfig, System};
use chronus::workloads::synthetic_app;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "429.mcf".into());
    let app = synthetic_app(&name, 0).unwrap_or_else(|| {
        eprintln!("unknown application {name:?}");
        std::process::exit(1);
    });
    println!("app: {name}\n");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>10}",
        "timing mode", "IPC", "hits", "conflicts", "norm. perf"
    );
    let mut base_ipc = 0.0;
    for (label, mode) in [
        ("baseline", TimingMode::Baseline),
        ("prac-fixed", TimingMode::Prac),
        ("prac-buggy", TimingMode::PracBuggy),
    ] {
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 60_000;
        cfg.mechanism = MechanismKind::Prac4;
        cfg.nrh = 1024;
        cfg.timing_override = Some(mode);
        let r = System::build(&cfg).run(vec![app.generate(70_000, 3)]);
        if base_ipc == 0.0 {
            base_ipc = r.ipc[0];
        }
        println!(
            "{:<14} {:>8.4} {:>8} {:>8} {:>10.3}",
            label,
            r.ipc[0],
            r.ctrl.row_hits,
            r.ctrl.row_conflicts,
            r.ipc[0] / base_ipc
        );
    }
    println!("\nPRAC's counter update during precharge grows tRP 15→36 ns and tRC 47→52 ns");
    println!("(Table 1) — the cost Chronus's concurrent counter update eliminates.");
}
