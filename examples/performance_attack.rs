//! §11 in miniature: one attacker core hammering 8 rows in each of 4
//! banks next to three benign applications, under PRAC-4 vs Chronus.
//!
//! ```sh
//! cargo run --release --example performance_attack
//! ```

use chronus::core::MechanismKind;
use chronus::ctrl::AddressMapping;
use chronus::dram::Geometry;
use chronus::sim::{SimConfig, System};
use chronus::workloads::{perf_attack_trace, synthetic_app};

fn main() {
    let nrh = 20;
    let instructions = 30_000u64;
    let benign = ["470.lbm", "tpch2", "473.astar"];
    let geo = Geometry::ddr5();

    let traces = |with_attacker: bool| {
        let mut ts: Vec<_> = benign
            .iter()
            .enumerate()
            .map(|(i, name)| {
                synthetic_app(name, i as u64)
                    .expect("app in roster")
                    .generate(instructions + 5_000, 11)
            })
            .collect();
        if with_attacker {
            ts.push(perf_attack_trace(
                AddressMapping::Mop,
                &geo,
                4,
                8,
                (instructions + 5_000) as usize,
            ));
        } else {
            ts.push(
                synthetic_app("548.exchange2", 3)
                    .expect("app in roster")
                    .generate(instructions + 5_000, 11),
            );
        }
        ts
    };

    for mech in [MechanismKind::Prac4, MechanismKind::Chronus] {
        let mut cfg = SimConfig::four_core();
        cfg.instructions_per_core = instructions;
        cfg.mechanism = mech;
        cfg.nrh = nrh;
        let calm = System::build(&cfg).run(traces(false));
        let attacked = System::build(&cfg).run(traces(true));
        let ws = |r: &chronus::sim::SimReport| r.ipc[..3].iter().sum::<f64>();
        let loss = 1.0 - ws(&attacked) / ws(&calm);
        println!(
            "{:<10} N_RH={nrh}: benign WS loss {:5.1}%  (back-offs {}, RFMs {})",
            mech.label(),
            loss * 100.0,
            attacked.ctrl.back_offs,
            attacked.dram.rfms,
        );
    }
    println!("\nThe paper's theoretical bound: PRAC-4 lets an attacker burn ~94% of");
    println!("DRAM bandwidth; Chronus caps it at ~32% (§11).");
}
