//! Compares every mechanism on one workload mix at one threshold.
//!
//! ```sh
//! cargo run --release --example mitigation_faceoff -- 64
//! ```
//! (the optional argument is N_RH; default 128)

use chronus::core::MechanismKind;
use chronus::sim::{SimConfig, System};
use chronus::workloads::synthetic_app;

fn main() {
    let nrh: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let apps = ["429.mcf", "462.libquantum", "tpch2", "473.astar"];
    let make_traces = || -> Vec<_> {
        apps.iter()
            .enumerate()
            .map(|(i, name)| {
                synthetic_app(name, i as u64)
                    .expect("app in roster")
                    .generate(40_000, 7)
            })
            .collect()
    };

    let run = |mech: MechanismKind| {
        let mut cfg = SimConfig::four_core();
        cfg.instructions_per_core = 30_000;
        cfg.mechanism = mech;
        cfg.nrh = nrh;
        System::build(&cfg).run(make_traces())
    };

    let baseline = run(MechanismKind::None);
    let base_ipc: f64 = baseline.ipc.iter().sum();
    println!("N_RH = {nrh}; baseline IPC sum = {base_ipc:.3}\n");
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>11} {:>8}",
        "mechanism", "perf", "energy", "back-offs", "prev. rows", "secure"
    );
    for &mech in MechanismKind::all() {
        let r = run(mech);
        let perf = r.ipc.iter().sum::<f64>() / base_ipc;
        let energy = r.energy_normalized_to(&baseline);
        let prev = r.dram.rfm_victim_rows + r.dram.vrrs + r.dram.borrowed_refreshes * 4;
        println!(
            "{:<12} {:>9.3} {:>10.3} {:>10} {:>11} {:>8}",
            r.mechanism,
            perf,
            energy,
            r.ctrl.back_offs,
            prev,
            if r.secure { "yes" } else { "NO" }
        );
    }
}
