//! Quickstart: simulate one four-core mix under Chronus and print a
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chronus::core::MechanismKind;
use chronus::sim::{SimConfig, System};
use chronus::workloads::synthetic_app;

fn main() {
    let mut cfg = SimConfig::four_core();
    cfg.mechanism = MechanismKind::Chronus;
    cfg.nrh = 1024;
    cfg.instructions_per_core = 50_000;

    let apps = ["429.mcf", "470.lbm", "tpch2", "511.povray"];
    let traces: Vec<_> = apps
        .iter()
        .enumerate()
        .map(|(i, name)| {
            synthetic_app(name, i as u64)
                .expect("app in roster")
                .generate(60_000, 42)
        })
        .collect();

    let report = System::build(&cfg).run(traces);

    println!("mechanism : {} (N_RH = {})", report.mechanism, report.nrh);
    println!(
        "cycles    : {} mem / {} cpu",
        report.mem_cycles, report.cpu_cycles
    );
    for (i, (app, ipc)) in apps.iter().zip(&report.ipc).enumerate() {
        println!("core {i}    : {app:<12} IPC = {ipc:.3}");
    }
    let d = &report.dram;
    println!(
        "dram      : {} ACTs, {} RDs, {} WRs, {} REFs, {} RFMs, {} VRRs",
        d.acts, d.reads, d.writes, d.refs, d.rfms, d.vrrs
    );
    println!(
        "ctrl      : {} row hits / {} misses / {} conflicts, {} back-offs",
        report.ctrl.row_hits,
        report.ctrl.row_misses,
        report.ctrl.row_conflicts,
        report.ctrl.back_offs
    );
    println!(
        "mechanism : {} counter updates, {} borrowed refreshes",
        report.dram_mitigation.counter_updates, report.dram_mitigation.borrowed_refreshes
    );
    println!("energy    : {:.3} mJ total", report.energy.total_mj());
}
