//! Analytical wave-attack exploration (§4–§5): how hard can an attacker
//! hammer a row under PRFM, PRAC-N and Chronus before its victims are
//! refreshed?
//!
//! ```sh
//! cargo run --release --example wave_attack_analysis
//! ```

use chronus::security::sweep::{prac_worst_case, prfm_worst_case};
use chronus::security::wave::WaveTiming;
use chronus::security::{chronus_max_acts, chronus_secure_nbo, prac_secure_nbo};

fn main() {
    let prac_t = WaveTiming::prac_default();
    let base_t = WaveTiming::baseline_default();

    println!("Wave attack vs PRFM (max ACTs before mitigation):");
    for th in [4u32, 16, 32, 64, 128] {
        let w = prfm_worst_case(th, &base_t);
        println!(
            "  RFMth = {th:<4} worst case = {:<5} (at |R1| = {})",
            w.max_acts, w.worst_r1
        );
    }

    println!("\nWave attack vs PRAC-N (N_BO = 1):");
    for n in [1u32, 2, 4] {
        let w = prac_worst_case(1, n, n, &prac_t);
        println!("  PRAC-{n}: worst case = {} ACTs", w.max_acts);
    }

    println!("\nSecure configurations per N_RH:");
    println!("  N_RH     PRAC-4 N_BO   Chronus N_BO   Chronus bound");
    for nrh in [20u32, 32, 64, 128, 256, 1024] {
        let prac = prac_secure_nbo(nrh, 4, 4, &prac_t)
            .map(|n| n.to_string())
            .unwrap_or_else(|| "none".into());
        let chronus = chronus_secure_nbo(nrh, 3);
        let bound = chronus.map(|n| chronus_max_acts(n, 3));
        println!(
            "  {nrh:<8} {prac:<13} {:<14} max A(i) = {}",
            chronus
                .map(|n| n.to_string())
                .unwrap_or_else(|| "none".into()),
            bound.map(|b| b.to_string()).unwrap_or_else(|| "-".into())
        );
    }
}
