//! Generates a synthetic trace, prints its statistics, round-trips it
//! through the text format, and shows where its accesses land in DRAM.
//!
//! ```sh
//! cargo run --release --example trace_inspector -- 429.mcf
//! ```

use chronus::cpu::Trace;
use chronus::ctrl::AddressMapping;
use chronus::dram::Geometry;
use chronus::workloads::synthetic_app;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "429.mcf".into());
    let app = synthetic_app(&name, 0).unwrap_or_else(|| {
        eprintln!("unknown application {name:?}; try 429.mcf, 470.lbm, tpch2, ...");
        std::process::exit(1);
    });
    let trace = app.generate(100_000, 1);
    println!("trace     : {}", trace.name);
    println!("entries   : {}", trace.entries.len());
    println!("instr.    : {}", trace.instructions());
    println!(
        "MPKI      : {:.2} (target {:.2})",
        trace.mpki(),
        app.profile().mpki
    );
    println!("read frac : {:.2}", trace.read_fraction());

    // Text round-trip.
    let mut buf = Vec::new();
    trace.write_text(&mut buf).expect("in-memory write");
    let back = Trace::read_text(&buf[..]).expect("parse own output");
    assert_eq!(back, trace);
    println!("text fmt  : {} bytes, round-trips OK", buf.len());

    // Bank pressure under the paper's MOP mapping.
    let geo = Geometry::ddr5();
    let mut per_bank = vec![0u64; geo.total_banks()];
    for e in &trace.entries {
        let a = AddressMapping::Mop.decode(e.op.addr(), &geo);
        per_bank[a.bank.flat(&geo)] += 1;
    }
    let busiest = per_bank.iter().max().copied().unwrap_or(0);
    let active_banks = per_bank.iter().filter(|&&c| c > 0).count();
    println!(
        "banks     : {}/{} touched, busiest bank sees {} accesses",
        active_banks,
        geo.total_banks(),
        busiest
    );
}
